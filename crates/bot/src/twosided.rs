//! Two-sided (message-based) bag-of-tasks work stealing.
//!
//! Models the Charm++/ParSSSE and X10/GLB comparators of Fig. 8. A steal is
//! a *request/reply* exchange: the thief sends a `Request`, the victim must
//! poll its mailbox between tasks, handle the message (receiver CPU cost),
//! and reply with half its bag or a denial. Two variants share the actor:
//!
//! * [`Variant::Random`] — Charm++-style: idle workers keep issuing
//!   requests to uniformly random victims.
//! * [`Variant::Lifeline`] — X10/GLB-style: after `w` failed random
//!   attempts the thief registers on its hypercube *lifeline* neighbours and
//!   goes quiescent; victims push half their surplus to an armed lifeline
//!   as they generate work (Saraswat et al.).
//!
//! Termination is the Mattern token circulating as a ring message.
//!
//! ## Fault tolerance
//!
//! Under an active [`FaultPlan`] the fabric may drop or duplicate
//! messages. The protocol stays correct by construction:
//!
//! * task-carrying messages (`Grant`, `Push`) travel on a *reliable* channel
//!   (the NIC retransmits until delivery, possibly delivering twice); each
//!   carries a per-sender sequence number and receivers drop duplicates, so
//!   every task moves exactly once;
//! * control messages (`Request`, `Deny`, `Lifeline`) are droppable: a thief
//!   whose request or reply is lost times out, counts a failed steal and
//!   retries; lifelines are re-armed after a timeout (arming is idempotent);
//! * the termination token is droppable but *retransmitted idempotently*:
//!   the initiator re-seeds a silent round after a timeout, and every worker
//!   caches the exact token it forwarded for the current round — a duplicate
//!   or retransmitted token triggers a verbatim re-send, so the wave always
//!   reaches the break and never double-counts.
//!
//! ## Fail-stop recovery (recovery-armed fault plans)
//!
//! `kill=W@T` entries arm the crash-tolerant protocol (see
//! `docs/PROTOCOLS.md`). On top of the lineage/replay machinery shared with
//! the one-sided runtime, two-sided stealing adds **in-flight tasks**: a
//! granted batch lives in the channel, in neither bag. The termination fold
//! therefore carries four counters (`created`, `consumed`, `sent`, `recv`)
//! and fires only when the live sums balance *and* `sent == recv`. When a
//! worker confirms a peer dead it (a) replays every batch it granted or
//! pushed to it, (b) relabels tasks it had received from it as locally
//! created, and (c) excludes its channel with the dead peer from the
//! `sent`/`recv` folds — messages from a confirmed-dead sender are fenced
//! off (rejected) so those adjustments stay final.

use std::collections::VecDeque;

use dcs_apps::uts::UtsSpec;
use dcs_sim::{
    Actor, Engine, FaultPlan, Machine, MachineConfig, MachineProfile, Mailbox, SimRng, Step,
    VTime, WorkerId,
};

use crate::termination::{
    accumulate, accumulate4, round_from_old_incarnation, round_initiator, tag_round_epoch,
    Detector, Token,
};
use crate::{BotReport, Counters, PforBag, Recovery, Task, Workload, TASK_BYTES};

/// Which two-sided strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Random request/reply stealing (Charm++-like).
    Random,
    /// Random attempts, then hypercube lifelines (X10/GLB-like).
    Lifeline,
}

/// Messages exchanged between workers. Task-carrying messages carry a
/// per-sender sequence number so receivers can drop fabric duplicates.
#[derive(Clone, Debug)]
pub enum Msg {
    Request,
    Grant(u64, Vec<Task>),
    Deny,
    /// Arm a lifeline from the sender to the receiver.
    Lifeline,
    /// Work pushed down an armed lifeline.
    Push(u64, Vec<Task>),
    Token(Token),
}

/// Shared state of a two-sided BoT run.
pub struct TwoWorld {
    pub m: Machine,
    pub bags: Vec<Vec<Task>>,
    pub counters: Vec<Counters>,
    pub mailbox: Mailbox<Msg>,
    pub recovery: Recovery,
    pub token_rounds: u64,
}

/// Random-attempt budget before falling back to lifelines.
const RANDOM_ATTEMPTS: u32 = 2;
/// Minimum bag size before a victim grants/pushes half.
const SURPLUS: usize = 2;

struct TwoWorker {
    me: WorkerId,
    n: usize,
    variant: Variant,
    work: Workload,
    armed: bool,
    scale: f64,
    rng: SimRng,
    /// Outstanding steal request: `(victim, sent_at)` — the timestamp drives
    /// the reply timeout under fault injection.
    pending: Option<(WorkerId, VTime)>,
    fails: u32,
    /// Lifelines registered *on this worker* (armed, FIFO for fairness).
    armed_on_me: VecDeque<WorkerId>,
    /// Which of my lifeline neighbours I currently have armed.
    my_armed: Vec<WorkerId>,
    /// When the lifelines were (last) armed, for fault re-arming.
    armed_at: VTime,
    /// Token held while busy.
    held_token: Option<Token>,
    detector: Detector,
    token_outstanding: bool,
    /// Initiator: when the current round's token was (re)sent.
    round_sent: VTime,
    /// Highest token round this worker forwarded (non-initiators).
    forwarded_round: u64,
    /// The exact token sent for the current round (seed for the initiator,
    /// accumulated token otherwise): re-sent verbatim on duplicates and
    /// retransmissions so the wave is idempotent.
    sent_cache: Option<Token>,
    /// Next sequence number for task-carrying sends.
    send_seq: u64,
    /// Highest task-message sequence accepted per sender (dup filter).
    /// Sparse: only senders this worker has actually heard from appear;
    /// an absent entry means sequence 0.
    seen_seq: std::collections::BTreeMap<WorkerId, u64>,
    /// Peers this worker has confirmed dead via the lease registry.
    /// Sparse: only confirmed workers appear, so scans over it cost
    /// O(confirmed), not O(W).
    dead: std::collections::BTreeSet<WorkerId>,
    /// Position in the machine's death-candidate feed
    /// ([`Machine::death_candidates`]); replaces an O(W) sweep per scan.
    death_cursor: usize,
    /// Tasks sent to / received from each peer (recovery bookkeeping).
    /// Sparse: only channels that actually carried tasks appear.
    sent_to: std::collections::BTreeMap<WorkerId, u64>,
    recv_from: std::collections::BTreeMap<WorkerId, u64>,
    /// Totals excluded from the `sent`/`recv` folds: channel traffic with
    /// peers now confirmed dead.
    sent_dead: u64,
    recv_dead: u64,
    /// Reply/retransmit timeout (fault runs only).
    rto: VTime,
    steals_ok: u64,
    steals_failed: u64,
    halted: bool,
}

impl TwoWorker {
    fn lifeline_neighbours(&self) -> Vec<WorkerId> {
        let mut out = Vec::new();
        let mut bit = 1;
        while bit < self.n {
            let nb = self.me ^ bit;
            if nb < self.n {
                out.push(nb);
            }
            bit <<= 1;
        }
        out
    }

    /// The lowest worker this one has not confirmed dead. The dead set is
    /// sorted, so this walks its prefix: O(confirmed).
    fn initiator(&self) -> WorkerId {
        let mut c = 0;
        for &d in &self.dead {
            if d == c {
                c += 1;
            } else {
                break;
            }
        }
        debug_assert!(c < self.n, "self is never confirmed dead");
        c
    }

    /// Next ring successor not confirmed dead. Skips only confirmed-dead
    /// peers, so the walk costs O(confirmed), not O(W).
    fn succ_live(&self) -> Option<WorkerId> {
        (1..self.n)
            .map(|d| (self.me + d) % self.n)
            .find(|p| !self.dead.contains(p))
    }

    /// `sent`/`recv` fold values excluding channels with confirmed-dead
    /// peers.
    fn sent_recv_live(&self, w: &TwoWorld) -> (u64, u64) {
        let c = w.counters[self.me];
        (c.sent - self.sent_dead, c.recv - self.recv_dead)
    }

    /// Mark `d` confirmed dead: replay granted batches, re-label tasks
    /// received from it, fence its channel out of the folds, and drop any
    /// protocol state pointing at it.
    fn confirm(&mut self, d: WorkerId, w: &mut TwoWorld) {
        if d == self.me || self.dead.contains(&d) {
            return;
        }
        self.dead.insert(d);
        let me = self.me;
        // Re-inject the batches granted to the dead peer. No `created`
        // adjustment: excluding the channel via `sent_dead` below already
        // puts those tasks back on this worker's books — the re-injection
        // is the physical side of that same correction.
        w.recovery.replay_batches(me, d, &mut w.bags[me]);
        let mut add = 0;
        if w.recovery.maybe_adopt_root(me, &self.dead, &mut w.bags[me]) {
            add += 1;
        }
        // Tasks received from the dead peer are re-labelled as locally
        // created: with its channel fenced off the transfer never happened
        // as far as the folds are concerned.
        let recv_d = self.recv_from.get(&d).copied().unwrap_or(0);
        add += recv_d;
        self.sent_dead += self.sent_to.get(&d).copied().unwrap_or(0);
        self.recv_dead += recv_d;
        w.counters[me].created += add;
        // Drop protocol state aimed at the dead peer.
        if matches!(self.pending, Some((v, _)) if v == d) {
            self.pending = None;
            self.fails += 1;
            self.steals_failed += 1;
        }
        self.armed_on_me.retain(|&p| p != d);
        self.my_armed.retain(|&p| p != d);
        if self.token_outstanding {
            // An outstanding round may have died with the peer: abandon it
            // (burning its sequence number) and re-seed.
            self.detector.rounds += 1;
            self.token_outstanding = false;
            self.sent_cache = None;
        }
    }

    /// Confirm every peer whose lease has expired. Driven by the machine's
    /// death-candidate feed: only workers whose suspicion status could have
    /// changed since the last scan are re-checked, so total scan cost over
    /// a run is O(status changes) instead of O(W) per step. Candidates are
    /// processed in increasing id order, matching the old `0..n` sweep's
    /// confirmation order.
    fn scan_confirm(&mut self, now: VTime, w: &mut TwoWorld) {
        let mut cands: Vec<WorkerId> = Vec::new();
        w.m.death_candidates(&mut self.death_cursor, now, &mut cands);
        if cands.is_empty() {
            return;
        }
        cands.sort_unstable();
        cands.dedup();
        for p in cands {
            if p != self.me && !self.dead.contains(&p) && w.m.confirmed_dead(p, now) {
                self.confirm(p, w);
            }
        }
    }

    /// Send `msg`; `droppable` selects the channel class. Task-carrying
    /// messages go on the reliable channel (`droppable = false`: the fabric
    /// may duplicate but never lose them); control traffic is droppable.
    fn send(&mut self, w: &mut TwoWorld, now: VTime, to: WorkerId, msg: Msg, droppable: bool) -> VTime {
        let cost = w.m.message_sent(self.me);
        let deliver = now + cost + VTime::ns(w.m.lat().message);
        let redeliver = deliver + VTime::ns(w.m.lat().message);
        let fate = w.m.msg_fate(self.me, droppable);
        w.mailbox.send_with_fate(self.me, to, deliver, redeliver, fate, msg);
        cost
    }

    fn send_tasks(&mut self, w: &mut TwoWorld, now: VTime, to: WorkerId, msg: Msg, k: usize) -> VTime {
        let cost = w.m.message_sent(self.me) + w.m.lat().payload(k * TASK_BYTES);
        let deliver = now + cost + VTime::ns(w.m.lat().message);
        let redeliver = deliver + VTime::ns(w.m.lat().message);
        let fate = w.m.msg_fate(self.me, false);
        w.mailbox.send_with_fate(self.me, to, deliver, redeliver, fate, msg);
        cost
    }

    /// Grant or push `k` tasks to `to`, with recovery bookkeeping: the
    /// batch is recorded as lineage before it leaves, and the transfer is
    /// counted on the sender side.
    fn give_tasks(&mut self, w: &mut TwoWorld, now: VTime, to: WorkerId, push: bool) -> VTime {
        let me = self.me;
        let k = w.bags[me].len() / 2;
        let tasks: Vec<Task> = w.bags[me].drain(..k).collect();
        if self.armed {
            w.recovery.record_batch(me, to, &tasks);
            w.counters[me].sent += k as u64;
            *self.sent_to.entry(to).or_insert(0) += k as u64;
        }
        self.send_seq += 1;
        let seq = self.send_seq;
        let msg = if push { Msg::Push(seq, tasks) } else { Msg::Grant(seq, tasks) };
        self.send_tasks(w, now, to, msg, k)
    }

    /// Accept a task batch from `from` (recovery bookkeeping).
    fn accept_tasks(&mut self, w: &mut TwoWorld, from: WorkerId, tasks: Vec<Task>) -> VTime {
        let me = self.me;
        let cost = w.m.lat().payload(tasks.len() * TASK_BYTES);
        if self.armed {
            w.counters[me].recv += tasks.len() as u64;
            *self.recv_from.entry(from).or_insert(0) += tasks.len() as u64;
        }
        w.bags[me].extend(tasks);
        cost
    }

    /// Forward (or hold) a token per Mattern's ring, dropping stale rounds
    /// and answering duplicates with the cached out-token.
    fn on_token(&mut self, w: &mut TwoWorld, now: VTime, tok: Token) -> VTime {
        if self.armed {
            return self.on_token_armed(w, now, tok);
        }
        if self.me != 0 {
            if tok.round <= self.forwarded_round {
                // Duplicate (or initiator retransmission) of a round this
                // worker already served: re-send the cached out-token
                // verbatim so the wave survives a downstream drop.
                if let Some(out) = self.sent_cache {
                    return self.send(w, now, (self.me + 1) % self.n, Msg::Token(out), true);
                }
                return VTime::ZERO;
            }
            if self.held_token.is_some_and(|h| h.round >= tok.round) {
                return VTime::ZERO; // duplicate of the token being held
            }
        } else if !self.token_outstanding || tok.round != self.detector.rounds + 1 {
            // Initiator: only the return of the outstanding round counts;
            // stale rounds and duplicates are dropped.
            return VTime::ZERO;
        }
        if !w.bags[self.me].is_empty() {
            self.held_token = Some(tok);
            return VTime::ZERO;
        }
        self.forward_token(w, now, tok)
    }

    fn on_token_armed(&mut self, w: &mut TwoWorld, now: VTime, tok: Token) -> VTime {
        // Rounds seeded by an initiator known to be dead can never fire,
        // and neither can one seeded by an evicted zombie incarnation.
        let seeder = round_initiator(tok.round);
        if self.dead.contains(&seeder) || round_from_old_incarnation(tok.round, w.m.epoch_of(seeder)) {
            return VTime::ZERO;
        }
        if self.me == self.initiator() {
            if !self.token_outstanding
                || tok.round
                    != tag_round_epoch(self.me, w.m.epoch_of(self.me), self.detector.rounds + 1)
            {
                return VTime::ZERO;
            }
        } else {
            if tok.round <= self.forwarded_round {
                if let (Some(out), Some(succ)) = (self.sent_cache, self.succ_live()) {
                    return self.send(w, now, succ, Msg::Token(out), true);
                }
                return VTime::ZERO;
            }
            if self.held_token.is_some_and(|h| h.round >= tok.round) {
                return VTime::ZERO;
            }
        }
        if !w.bags[self.me].is_empty() {
            self.held_token = Some(tok);
            return VTime::ZERO;
        }
        self.forward_token(w, now, tok)
    }

    fn forward_token(&mut self, w: &mut TwoWorld, now: VTime, tok: Token) -> VTime {
        if self.armed {
            // Confirm every expired lease before folding, so lineage
            // replays land in the counters this fold reports.
            self.scan_confirm(now, w);
            if !w.bags[self.me].is_empty() {
                // A replay refilled the bag: hold the token until done.
                self.held_token = Some(tok);
                return VTime::ZERO;
            }
            return self.forward_token_armed(w, now, tok);
        }
        let cnt = w.counters[self.me];
        if self.me == 0 {
            // Round completed.
            self.token_outstanding = false;
            self.sent_cache = None;
            let done = self.detector.round_done(tok.created, tok.consumed);
            w.token_rounds = self.detector.rounds;
            if done {
                let hops = (self.n as f64).log2().ceil() as u64;
                let reduce = VTime::ns(hops * (w.m.lat().message + w.m.lat().msg_handler));
                w.m.set_done();
                return reduce;
            }
            VTime::ZERO
        } else {
            let out = accumulate(tok, cnt.created, cnt.consumed);
            self.forwarded_round = tok.round;
            self.sent_cache = Some(out);
            self.send(w, now, (self.me + 1) % self.n, Msg::Token(out), true)
        }
    }

    fn forward_token_armed(&mut self, w: &mut TwoWorld, now: VTime, tok: Token) -> VTime {
        let me = self.me;
        let cnt = w.counters[me];
        let (s_live, r_live) = self.sent_recv_live(w);
        if me == self.initiator() {
            if tok.round != tag_round_epoch(me, w.m.epoch_of(me), self.detector.rounds + 1) {
                return VTime::ZERO; // confirmed a death since accepting
            }
            self.token_outstanding = false;
            self.sent_cache = None;
            // Stability: fire only if every known death was confirmable
            // before the round started (see onesided.rs for the argument).
            let start = VTime::ns(tok.start_ns);
            let stable = self.dead.iter().all(|&d| w.m.confirmed_dead(d, start));
            let done = self
                .detector
                .round_done4(tok.created, tok.consumed, tok.sent, tok.recv)
                && stable;
            w.token_rounds = w.token_rounds.max(self.detector.rounds);
            if done {
                let hops = (self.n as f64).log2().ceil() as u64;
                let reduce = VTime::ns(hops * (w.m.lat().message + w.m.lat().msg_handler));
                w.m.set_done();
                return reduce;
            }
            VTime::ZERO
        } else {
            let Some(succ) = self.succ_live() else {
                return VTime::ZERO; // everyone else died: initiator duty next idle step
            };
            let out = accumulate4(tok, cnt.created, cnt.consumed, s_live, r_live);
            self.forwarded_round = tok.round;
            self.sent_cache = Some(out);
            self.send(w, now, succ, Msg::Token(out), true)
        }
    }

    /// Handle one incoming message; returns its cost, and whether the worker
    /// acquired work.
    fn handle(&mut self, w: &mut TwoWorld, now: VTime, from: WorkerId, msg: Msg) -> (VTime, bool) {
        let me = self.me;
        let mut cost = w.m.message_handled(me);
        let mut got_work = false;
        if self.armed && self.dead.contains(&from) && !matches!(msg, Msg::Token(_)) {
            // Epoch fencing: traffic from a confirmed-dead sender is
            // rejected — its batches were already replayed and its channel
            // excluded from the folds, so accepting now would double-count.
            return (cost, false);
        }
        match msg {
            Msg::Request => {
                if w.bags[me].len() >= SURPLUS {
                    let k = w.bags[me].len() / 2;
                    cost += self.give_tasks(w, now, from, false);
                    debug_assert!(k >= 1);
                } else {
                    cost += self.send(w, now, from, Msg::Deny, true);
                }
            }
            Msg::Grant(seq, tasks) => {
                if seq > self.seen_seq.get(&from).copied().unwrap_or(0) {
                    self.seen_seq.insert(from, seq);
                    // A grant may land after the reply timeout already gave
                    // up on this victim: the tasks are still welcome, only
                    // the matching pending slot (if any) is cleared.
                    if matches!(self.pending, Some((v, _)) if v == from) {
                        self.pending = None;
                    }
                    self.fails = 0;
                    self.steals_ok += 1;
                    cost += self.accept_tasks(w, from, tasks);
                    got_work = true;
                }
                // else: fabric duplicate of a grant already banked — drop.
            }
            Msg::Deny => {
                // Stale denies (after a timeout) and duplicates are ignored.
                if matches!(self.pending, Some((v, _)) if v == from) {
                    self.pending = None;
                    self.fails += 1;
                    self.steals_failed += 1;
                }
            }
            Msg::Lifeline => {
                if !self.armed_on_me.contains(&from) {
                    self.armed_on_me.push_back(from);
                }
            }
            Msg::Push(seq, tasks) => {
                self.my_armed.retain(|&v| v != from);
                if seq > self.seen_seq.get(&from).copied().unwrap_or(0) {
                    self.seen_seq.insert(from, seq);
                    cost += self.accept_tasks(w, from, tasks);
                    self.steals_ok += 1;
                    got_work = true;
                }
                // else: fabric duplicate of a push already banked — drop.
            }
            Msg::Token(tok) => {
                cost += self.on_token(w, now, tok);
            }
        }
        (cost, got_work)
    }

    fn poll_one(&mut self, w: &mut TwoWorld, now: VTime) -> (VTime, bool) {
        let mut cost = w.m.local_op(self.me);
        let mut got = false;
        if let Some((from, msg)) = w.mailbox.recv(self.me, now) {
            let (c, g) = self.handle(w, now, from, msg);
            cost += c;
            got = g;
        }
        (cost, got)
    }

    fn step_work(&mut self, w: &mut TwoWorld, now: VTime) -> Step {
        let me = self.me;
        // Poll between tasks — the receiver-side interruption two-sided
        // stealing imposes.
        let (mut cost, _) = self.poll_one(w, now);
        let Some(task) = w.bags[me].pop() else {
            // Release a held token before going idle.
            if let Some(tok) = self.held_token.take() {
                cost += self.forward_token(w, now, tok);
            }
            return Step::Yield(cost + w.m.local_op(me));
        };
        let (n_children, obs, c2) = self.work.execute(task, &mut w.bags[me], self.scale);
        cost += c2;
        let cnt = &mut w.counters[me];
        cnt.consumed += 1;
        cnt.created += n_children as u64;
        if let Some((id, delta)) = obs {
            cnt.nodes += delta;
            if self.armed {
                w.recovery.collector.observe(id, delta);
            }
        }
        // Lifeline distribution: feed one armed lifeline from surplus.
        if self.variant == Variant::Lifeline && w.bags[me].len() > SURPLUS {
            if let Some(dst) = self.armed_on_me.pop_front() {
                cost += self.give_tasks(w, now, dst, true);
            }
        }
        Step::Yield(cost)
    }

    fn step_idle(&mut self, w: &mut TwoWorld, now: VTime) -> Step {
        let me = self.me;
        if w.m.is_done() {
            assert!(w.bags[me].is_empty(), "terminated with work in the bag");
            self.halted = true;
            return Step::Halt;
        }
        let (mut cost, _) = self.poll_one(w, now);
        if self.armed {
            self.scan_confirm(now, w);
        }
        if !w.bags[me].is_empty() {
            return Step::Yield(cost);
        }
        // Release a token held since the busy phase.
        if let Some(tok) = self.held_token.take() {
            cost += self.forward_token(w, now, tok);
        }
        // Initiator token duty.
        let init = if self.armed { self.initiator() } else { 0 };
        if me == init {
            if !self.token_outstanding {
                let cnt = w.counters[me];
                let succ = if self.armed {
                    self.succ_live()
                } else if self.n > 1 {
                    Some((me + 1) % self.n)
                } else {
                    None
                };
                let Some(succ) = succ else {
                    // Degenerate ring (single worker, or every peer dead).
                    let done = if self.armed {
                        let (s, r) = self.sent_recv_live(w);
                        self.detector.round_done4(cnt.created, cnt.consumed, s, r)
                    } else {
                        self.detector.round_done(cnt.created, cnt.consumed)
                    };
                    w.token_rounds = w.token_rounds.max(self.detector.rounds);
                    if done {
                        w.m.set_done();
                    }
                    return Step::Yield(cost + w.m.local_op(me));
                };
                let tok = if self.armed {
                    let (s, r) = self.sent_recv_live(w);
                    self.detector.new_round_tagged(
                        me,
                        w.m.epoch_of(me),
                        now.as_ns(),
                        cnt.created,
                        cnt.consumed,
                        s,
                        r,
                    )
                } else {
                    self.detector.new_round(cnt.created, cnt.consumed)
                };
                self.token_outstanding = true;
                self.round_sent = now;
                self.sent_cache = Some(tok);
                cost += self.send(w, now, succ, Msg::Token(tok), true);
            } else if w.m.faults_active() && now.saturating_sub(self.round_sent) > self.rto {
                // The wave went silent: the token (or a forward of it) was
                // probably dropped or died with a worker. Re-seed the round
                // verbatim — every hop is idempotent, so a late original
                // cannot double-count.
                if let Some(tok) = self.sent_cache {
                    let succ = if self.armed {
                        self.succ_live()
                    } else {
                        Some((me + 1) % self.n)
                    };
                    if let Some(succ) = succ {
                        self.round_sent = now;
                        cost += self.send(w, now, succ, Msg::Token(tok), true);
                    }
                }
            }
        }
        if self.n == 1 {
            return Step::Yield(cost);
        }
        if let Some((_, at)) = self.pending {
            if w.m.faults_active() && now.saturating_sub(at) > self.rto {
                // Request or reply lost in the fabric: give up on this
                // victim, count the failure, and try elsewhere.
                self.pending = None;
                self.fails += 1;
                self.steals_failed += 1;
            } else {
                // Waiting for a reply; just keep polling.
                return Step::Yield(cost);
            }
        }
        match self.variant {
            Variant::Random => {
                let victim = self.rng.victim(self.n, me);
                if self.armed && self.dead.contains(&victim) {
                    self.steals_failed += 1;
                } else {
                    cost += self.send(w, now, victim, Msg::Request, true);
                    self.pending = Some((victim, now));
                }
            }
            Variant::Lifeline => {
                if self.fails < RANDOM_ATTEMPTS {
                    let victim = self.rng.victim(self.n, me);
                    if self.armed && self.dead.contains(&victim) {
                        self.steals_failed += 1;
                    } else {
                        cost += self.send(w, now, victim, Msg::Request, true);
                        self.pending = Some((victim, now));
                    }
                } else {
                    if w.m.faults_active()
                        && !self.my_armed.is_empty()
                        && now.saturating_sub(self.armed_at) > self.rto
                    {
                        // Arm messages may have been dropped: forget the old
                        // registrations and re-arm (arming is idempotent on
                        // the victim side).
                        self.my_armed.clear();
                    }
                    // Arm any un-armed lifelines, then wait passively.
                    let mut armed_any = false;
                    for nb in self.lifeline_neighbours() {
                        if self.armed && self.dead.contains(&nb) {
                            continue;
                        }
                        if !self.my_armed.contains(&nb) {
                            self.my_armed.push(nb);
                            cost += self.send(w, now, nb, Msg::Lifeline, true);
                            armed_any = true;
                        }
                    }
                    if armed_any {
                        self.armed_at = now;
                    }
                }
            }
        }
        Step::Yield(cost)
    }
}

impl Actor<TwoWorld> for TwoWorker {
    fn step(&mut self, me: WorkerId, now: VTime, w: &mut TwoWorld) -> Step {
        debug_assert_eq!(me, self.me);
        if self.halted {
            return Step::Halt;
        }
        w.m.begin_step(me, now);
        if self.armed && w.m.is_dead(me, now) {
            // Fail-stop: resident tasks are lost with the worker; givers
            // replay them from lineage once the lease expires. Queued mail
            // is never polled again.
            w.recovery.lost_tasks += w.bags[me].len() as u64;
            w.bags[me].clear();
            self.halted = true;
            return Step::Halt;
        }
        if let Some(until) = w.m.crashed_until(me, now) {
            // Crash-stop window: freeze (mail piles up) until it ends.
            return Step::Yield(until.saturating_sub(now).max(VTime::ns(1)));
        }
        if w.bags[me].is_empty() {
            self.step_idle(w, now)
        } else {
            self.step_work(w, now)
        }
    }
}

/// Run UTS under a two-sided BoT runtime.
pub fn run_uts(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    variant: Variant,
    seed: u64,
) -> BotReport {
    run_uts_faulty(spec, workers, profile, variant, seed, FaultPlan::none())
}

/// [`run_uts`] under a fault plan: the fabric may fail verbs, drop or
/// duplicate messages, degrade NICs, crash-stop workers and permanently
/// kill them, and the protocol must still produce the exact serial node
/// count.
pub fn run_uts_faulty(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    variant: Variant,
    seed: u64,
    plan: FaultPlan,
) -> BotReport {
    run_workload_faulty(&Workload::Uts(spec.clone()), workers, profile, variant, seed, plan)
}

/// Run PFor as a bag of ranges under a two-sided runtime.
pub fn run_pfor_faulty(
    p: PforBag,
    workers: usize,
    profile: MachineProfile,
    variant: Variant,
    seed: u64,
    plan: FaultPlan,
) -> BotReport {
    run_workload_faulty(&Workload::Pfor(p), workers, profile, variant, seed, plan)
}

/// Run any bag workload under a fault plan.
pub fn run_workload_faulty(
    work: &Workload,
    workers: usize,
    profile: MachineProfile,
    variant: Variant,
    seed: u64,
    plan: FaultPlan,
) -> BotReport {
    let armed = plan.recovery_armed();
    let scale = profile.compute_scale;
    let m = Machine::new(
        MachineConfig::new(workers, profile)
            .with_seg_bytes(1 << 12)
            .with_faults(plan),
    );
    // Reply/retransmit timeout: generously above a round trip, so healthy
    // exchanges never trip it even under degraded-NIC scaling.
    let rto = VTime::ns((m.lat().message + m.lat().msg_handler) * 64);
    let root = work.root_task();
    let mut world = TwoWorld {
        m,
        bags: (0..workers).map(|_| Vec::new()).collect(),
        counters: vec![Counters::default(); workers],
        mailbox: Mailbox::new(workers),
        recovery: Recovery::new(workers, root),
        token_rounds: 0,
    };
    world.bags[0].push(root);
    world.counters[0].created = 1;

    let actors: Vec<TwoWorker> = (0..workers)
        .map(|me| TwoWorker {
            me,
            n: workers,
            variant,
            work: work.clone(),
            armed,
            scale,
            rng: SimRng::for_worker(seed, me),
            pending: None,
            fails: 0,
            armed_on_me: VecDeque::new(),
            my_armed: Vec::new(),
            armed_at: VTime::ZERO,
            held_token: None,
            detector: Detector::default(),
            token_outstanding: false,
            round_sent: VTime::ZERO,
            forwarded_round: 0,
            sent_cache: None,
            send_seq: 0,
            seen_seq: std::collections::BTreeMap::new(),
            dead: std::collections::BTreeSet::new(),
            death_cursor: 0,
            sent_to: std::collections::BTreeMap::new(),
            recv_from: std::collections::BTreeMap::new(),
            sent_dead: 0,
            recv_dead: 0,
            rto,
            steals_ok: 0,
            steals_failed: 0,
            halted: false,
        })
        .collect();

    let mut engine = Engine::new(world, actors);
    let report = engine.run();
    let (world, actors) = engine.into_parts();
    let end = report.end_time;

    let live = |p: &usize| !world.m.is_dead(*p, end);
    let created: u64 = (0..workers).filter(live).map(|p| world.counters[p].created).sum();
    let consumed: u64 = (0..workers).filter(live).map(|p| world.counters[p].consumed).sum();
    assert_eq!(created, consumed, "termination fired with outstanding work");
    if armed {
        for p in (0..workers).filter(live) {
            assert!(world.bags[p].is_empty(), "live worker {p} terminated with work");
        }
    }

    let dead_workers = (0..workers).filter(|p| !live(p)).count() as u64;
    BotReport {
        elapsed: end,
        nodes: if armed {
            world.recovery.collector.unique
        } else {
            world.counters.iter().map(|c| c.nodes).sum()
        },
        checksum: world.recovery.collector.checksum,
        steals_ok: actors.iter().map(|a| a.steals_ok).sum(),
        steals_failed: actors.iter().map(|a| a.steals_failed).sum(),
        messages: world.m.stats_total().messages_handled,
        token_rounds: world.token_rounds,
        dead_workers,
        lost_tasks: world.recovery.lost_tasks,
        reexec_tasks: world.recovery.reexec_tasks,
        dup_results: world.recovery.collector.dups,
        fabric: world.m.stats_total(),
        steps: report.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_apps::uts::{presets, serial_count};
    use dcs_sim::profiles;

    #[test]
    fn random_counts_match_serial() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for workers in [1, 2, 4, 8] {
            let r = run_uts(&spec, workers, profiles::test_profile(), Variant::Random, 11);
            assert_eq!(r.nodes, expected, "P={workers}");
        }
    }

    #[test]
    fn lifeline_counts_match_serial() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for workers in [1, 2, 4, 8] {
            let r = run_uts(&spec, workers, profiles::test_profile(), Variant::Lifeline, 13);
            assert_eq!(r.nodes, expected, "P={workers}");
        }
    }

    #[test]
    fn two_sided_runtimes_send_messages() {
        let spec = presets::tiny();
        let r = run_uts(&spec, 4, profiles::test_profile(), Variant::Random, 17);
        assert!(r.messages > 0);
        assert!(r.steals_ok > 0);
    }

    #[test]
    fn lifeline_cuts_failed_attempts_versus_random() {
        let spec = presets::small();
        let rnd = run_uts(&spec, 8, profiles::itoa(), Variant::Random, 23);
        let ll = run_uts(&spec, 8, profiles::itoa(), Variant::Lifeline, 23);
        assert_eq!(rnd.nodes, ll.nodes);
        assert!(
            ll.steals_failed < rnd.steals_failed,
            "lifelines should reduce failed requests: {} vs {}",
            ll.steals_failed,
            rnd.steals_failed
        );
    }

    #[test]
    fn deterministic() {
        let spec = presets::tiny();
        let a = run_uts(&spec, 4, profiles::test_profile(), Variant::Lifeline, 29);
        let b = run_uts(&spec, 4, profiles::test_profile(), Variant::Lifeline, 29);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn counts_survive_transient_faults_drops_and_dups() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for variant in [Variant::Random, Variant::Lifeline] {
            for workers in [2, 4, 8] {
                let plan = FaultPlan::transient(0.05, 91);
                let r = run_uts_faulty(&spec, workers, profiles::test_profile(), variant, 31, plan);
                assert_eq!(r.nodes, expected, "{variant:?} P={workers}");
            }
        }
    }

    #[test]
    fn counts_survive_crash_window() {
        use dcs_sim::CrashWindow;
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        let plan = FaultPlan::none().with_crash(CrashWindow {
            worker: 1,
            from: VTime::us(2),
            until: VTime::us(300),
        });
        for variant in [Variant::Random, Variant::Lifeline] {
            let r = run_uts_faulty(&spec, 4, profiles::test_profile(), variant, 37, plan.clone());
            assert_eq!(r.nodes, expected, "{variant:?}");
        }
    }

    #[test]
    fn faulty_runs_are_deterministic_and_no_fault_plan_is_identical() {
        let spec = presets::tiny();
        let plan = FaultPlan::transient(0.08, 5);
        let a = run_uts_faulty(&spec, 4, profiles::test_profile(), Variant::Random, 41, plan.clone());
        let b = run_uts_faulty(&spec, 4, profiles::test_profile(), Variant::Random, 41, plan);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.steals_failed, b.steals_failed);
        // The empty plan is bit-identical to the plain entry point.
        let plain = run_uts(&spec, 4, profiles::test_profile(), Variant::Random, 41);
        let none = run_uts_faulty(
            &spec,
            4,
            profiles::test_profile(),
            Variant::Random,
            41,
            FaultPlan::none(),
        );
        assert_eq!(plain.elapsed, none.elapsed);
        assert_eq!(plain.steps, none.steps);
        assert_eq!(plain.messages, none.messages);
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use dcs_apps::uts::{presets, serial_count};
    use dcs_sim::profiles;

    #[test]
    fn survives_single_kill_with_exact_result() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for variant in [Variant::Random, Variant::Lifeline] {
            for at_us in [5u64, 60, 120] {
                let plan = FaultPlan::none().with_kill(2, VTime::us(at_us));
                let r = run_uts_faulty(&spec, 4, profiles::test_profile(), variant, 43, plan);
                assert_eq!(r.nodes, expected, "{variant:?} kill at {at_us}us");
                assert_eq!(r.dead_workers, 1);
            }
        }
    }

    #[test]
    fn survives_killing_worker_zero() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for variant in [Variant::Random, Variant::Lifeline] {
            let plan = FaultPlan::none().with_kill(0, VTime::us(30));
            let r = run_uts_faulty(&spec, 4, profiles::test_profile(), variant, 47, plan);
            assert_eq!(r.nodes, expected, "{variant:?}");
        }
    }

    #[test]
    fn survives_half_the_workers_dying() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        let plan = FaultPlan::none()
            .with_kill(2, VTime::us(10))
            .with_kill(5, VTime::us(25))
            .with_kill(6, VTime::us(40))
            .with_kill(1, VTime::us(55));
        for variant in [Variant::Random, Variant::Lifeline] {
            let r = run_uts_faulty(&spec, 8, profiles::test_profile(), variant, 53, plan.clone());
            assert_eq!(r.nodes, expected, "{variant:?}");
            assert_eq!(r.dead_workers, 4);
        }
    }

    #[test]
    fn killed_runs_are_deterministic() {
        let spec = presets::tiny();
        let plan = FaultPlan::none().with_kill(3, VTime::us(45));
        let a = run_uts_faulty(&spec, 4, profiles::test_profile(), Variant::Lifeline, 59, plan.clone());
        let b = run_uts_faulty(&spec, 4, profiles::test_profile(), Variant::Lifeline, 59, plan);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn pfor_survives_kills() {
        let p = PforBag { n: 512, grain: 8, m: VTime::us(2) };
        let plan = FaultPlan::none().with_kill(1, VTime::us(50));
        for variant in [Variant::Random, Variant::Lifeline] {
            let r = run_pfor_faulty(p, 4, profiles::test_profile(), variant, 61, plan.clone());
            assert_eq!(r.nodes, 512, "{variant:?}");
        }
    }
}
