//! # dcs-bot — bag-of-tasks work-stealing baselines
//!
//! The paper compares its fork-join runtime against three *bag-of-tasks*
//! (BoT) systems on UTS (Fig. 8): SAWS (RDMA steal-half), Charm++/ParSSSE
//! (message-based random stealing) and X10/GLB (message-based lifeline
//! stealing). A BoT cannot express task dependencies, so it needs (a) a
//! per-worker bag of not-yet-expanded tree nodes and (b) **global
//! termination detection** before the per-worker counts can be reduced.
//!
//! This crate implements all three styles on the same simulated fabric:
//!
//! * [`onesided`] — SAWS/Scioto-like: the bag's control words live in
//!   pinned memory; thieves lock the bag with an RDMA CAS and take **half**
//!   the tasks one-sidedly, never interrupting the victim.
//! * [`twosided`] — Charm++-style random request/reply stealing and
//!   X10/GLB-style *lifeline* stealing, both over two-sided messages that
//!   the victim must poll for and handle (the overhead the paper blames for
//!   their poorer scaling).
//! * [`termination`] — Mattern four-counter (double-round) token
//!   termination detection, in both a one-sided (token words written into
//!   the successor's segment) and a message-ring flavour.

pub mod onesided;
pub mod termination;
pub mod twosided;

use dcs_apps::uts::UtsSpec;
use dcs_sim::{FabricStats, VTime};

/// A not-yet-expanded UTS node in a bag.
pub type NodeTask = (dcs_apps::sha1::Digest, u32);

/// Wire size of one bag task: 20-byte digest + depth + header.
pub const TASK_BYTES: usize = 28;

/// Per-worker work/termination counters (Mattern's method counts task
/// creations and consumptions; both are monotone).
#[derive(Clone, Copy, Debug, Default)]
pub struct Counters {
    pub created: u64,
    pub consumed: u64,
    /// Nodes counted by this worker (the UTS result contribution).
    pub nodes: u64,
}

/// Result of a bag-of-tasks run.
#[derive(Debug, Clone)]
pub struct BotReport {
    /// Virtual makespan, including termination detection and the final
    /// count reduction.
    pub elapsed: VTime,
    /// Total nodes counted (must equal the tree size).
    pub nodes: u64,
    pub steals_ok: u64,
    pub steals_failed: u64,
    /// Messages handled by receivers (two-sided runtimes).
    pub messages: u64,
    /// Token rounds until termination fired.
    pub token_rounds: u64,
    pub fabric: FabricStats,
    pub steps: u64,
}

impl BotReport {
    /// UTS throughput in nodes per second of virtual time.
    pub fn throughput(&self) -> f64 {
        self.nodes as f64 / self.elapsed.as_secs_f64()
    }
}

/// Shared helper: expand one node, pushing children into `bag`, returning
/// (children, visit cost at the given compute scale).
pub fn expand_node(
    spec: &UtsSpec,
    task: NodeTask,
    bag: &mut Vec<NodeTask>,
    compute_scale: f64,
) -> (u32, VTime) {
    let (digest, depth) = task;
    let children = spec.children(&digest, depth);
    let n = children.len() as u32;
    for c in children {
        bag.push((c, depth + 1));
    }
    (n, spec.visit_cost(n).scale(compute_scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_apps::uts::presets;

    #[test]
    fn expand_matches_spec() {
        let spec = presets::tiny();
        let mut bag = Vec::new();
        let root = (spec.root(), 0u32);
        let (n, cost) = expand_node(&spec, root, &mut bag, 1.0);
        assert_eq!(n as usize, bag.len());
        assert_eq!(n, spec.num_children(&spec.root(), 0));
        assert_eq!(cost, spec.visit_cost(n));
        // Children are at depth 1.
        assert!(bag.iter().all(|&(_, d)| d == 1));
    }

    #[test]
    fn expand_scales_cost() {
        let spec = presets::tiny();
        let mut bag = Vec::new();
        let (_, c1) = expand_node(&spec, (spec.root(), 0), &mut bag, 1.0);
        bag.clear();
        let (_, c2) = expand_node(&spec, (spec.root(), 0), &mut bag, 2.0);
        assert_eq!(c2, c1.scale(2.0));
    }
}
