//! # dcs-bot — bag-of-tasks work-stealing baselines
//!
//! The paper compares its fork-join runtime against three *bag-of-tasks*
//! (BoT) systems on UTS (Fig. 8): SAWS (RDMA steal-half), Charm++/ParSSSE
//! (message-based random stealing) and X10/GLB (message-based lifeline
//! stealing). A BoT cannot express task dependencies, so it needs (a) a
//! per-worker bag of not-yet-expanded tree nodes and (b) **global
//! termination detection** before the per-worker counts can be reduced.
//!
//! This crate implements all three styles on the same simulated fabric:
//!
//! * [`onesided`] — SAWS/Scioto-like: the bag's control words live in
//!   pinned memory; thieves lock the bag with an RDMA CAS and take **half**
//!   the tasks one-sidedly, never interrupting the victim.
//! * [`twosided`] — Charm++-style random request/reply stealing and
//!   X10/GLB-style *lifeline* stealing, both over two-sided messages that
//!   the victim must poll for and handle (the overhead the paper blames for
//!   their poorer scaling).
//! * [`termination`] — Mattern four-counter (double-round) token
//!   termination detection, in both a one-sided (token words written into
//!   the successor's segment) and a message-ring flavour.
//!
//! ## Fail-stop recovery
//!
//! Under a recovery-armed [`dcs_sim::FaultPlan`] (`kill=…` entries or
//! `recover=on`) both runtimes survive permanent worker loss:
//!
//! * every batch of tasks that leaves a worker is recorded as a
//!   steal-lineage [`Batch`] at the *giver* ([`Recovery::record_batch`]);
//! * when a survivor's lease registry confirms a peer dead, the giver
//!   re-injects its un-replayed batches to that peer
//!   ([`Recovery::replay_batches`]) and the lowest live worker re-adopts
//!   the root if its holder died ([`Recovery::maybe_adopt_root`]);
//! * re-execution is **at-least-once**; the head-node [`Collector`]
//!   deduplicates observations by task id, so the reported result is
//!   exactly-once.

pub mod onesided;
pub mod termination;
pub mod twosided;

use std::collections::HashSet;

use dcs_apps::pfor::PforParams;
use dcs_apps::uts::UtsSpec;
use dcs_sim::{FabricStats, VTime, WorkerId};

/// A not-yet-expanded UTS node in a bag (legacy alias; bags hold [`Task`]).
pub type NodeTask = (dcs_apps::sha1::Digest, u32);

/// Wire size of one bag task: 20-byte digest + depth + header (a PFor range
/// task is padded to the same slot size).
pub const TASK_BYTES: usize = 28;

/// One unit of bag work, for any of the supported workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// An unexpanded UTS node: digest + depth.
    Node(dcs_apps::sha1::Digest, u32),
    /// A PFor iteration range `[lo, hi)`.
    Range(u64, u64),
}

impl Task {
    /// Stable task identifier used for result-layer dedup. UTS digests are
    /// unique per node by construction, so the first 8 bytes identify the
    /// node; a PFor range is identified by its bounds. Only *observed*
    /// tasks (every UTS node; PFor leaf chunks) need unique ids.
    pub fn id(&self) -> u64 {
        match self {
            Task::Node(d, _) => u64::from_be_bytes(d[..8].try_into().expect("8-byte prefix")),
            Task::Range(lo, hi) => (lo << 32) | (hi & 0xFFFF_FFFF),
        }
    }
}

/// PFor expressed as a bag workload: ranges split in half until they are
/// at most `grain` long, then the leaf computes `m` per element.
#[derive(Clone, Copy, Debug)]
pub struct PforBag {
    pub n: u64,
    pub grain: u64,
    /// Per-element compute duration (nominal, ITO-A scale).
    pub m: VTime,
}

impl PforBag {
    /// The paper's PFor parameters over a bag: per-element cost `M`, with a
    /// splitting grain chosen so the bag has ample parallel slack.
    pub fn paper(n: u64, grain: u64) -> PforBag {
        let p = PforParams::paper(n);
        PforBag { n, grain, m: p.m }
    }
}

/// What executing a task produced, for the head-node result stream:
/// `(task id, result contribution)`. UTS observes every node with delta 1;
/// PFor observes leaf chunks with their element count (splits are pure
/// control flow, re-derivable, so they are not observed).
pub type Observation = Option<(u64, u64)>;

/// The workload a BoT runtime executes.
#[derive(Clone, Debug)]
pub enum Workload {
    Uts(UtsSpec),
    Pfor(PforBag),
}

impl Workload {
    /// The single task the computation starts from.
    pub fn root_task(&self) -> Task {
        match self {
            Workload::Uts(spec) => Task::Node(spec.root(), 0),
            Workload::Pfor(p) => Task::Range(0, p.n),
        }
    }

    /// Execute one task: push children into `bag`, return
    /// `(children, observation, compute cost)`.
    pub fn execute(&self, task: Task, bag: &mut Vec<Task>, scale: f64) -> (u32, Observation, VTime) {
        match (self, task) {
            (Workload::Uts(spec), Task::Node(digest, depth)) => {
                let children = spec.children(&digest, depth);
                let n = children.len() as u32;
                for c in children {
                    bag.push(Task::Node(c, depth + 1));
                }
                (n, Some((task.id(), 1)), spec.visit_cost(n).scale(scale))
            }
            (Workload::Pfor(p), Task::Range(lo, hi)) => {
                let len = hi - lo;
                if len <= p.grain {
                    return (0, Some((task.id(), len)), (p.m * len).scale(scale));
                }
                let mid = lo + len / 2;
                bag.push(Task::Range(lo, mid));
                bag.push(Task::Range(mid, hi));
                // Splitting is control flow only: a fixed small charge.
                (2, None, VTime::ns(100).scale(scale))
            }
            (w, t) => panic!("task {t:?} does not belong to workload {w:?}"),
        }
    }

    /// The exact result a fault-free run must report (`nodes` for UTS,
    /// elements for PFor).
    pub fn expected(&self) -> u64 {
        match self {
            Workload::Uts(spec) => dcs_apps::uts::serial_count(spec).nodes,
            Workload::Pfor(p) => p.n,
        }
    }
}

/// Per-worker work/termination counters (Mattern's method counts task
/// creations and consumptions; both are monotone). `sent`/`recv` extend
/// the fold to four counters for the two-sided runtimes, where granted
/// tasks spend time in flight.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counters {
    pub created: u64,
    pub consumed: u64,
    /// Tasks granted/pushed to peers (two-sided recovery mode).
    pub sent: u64,
    /// Tasks accepted from peers (two-sided recovery mode).
    pub recv: u64,
    /// Nodes counted by this worker (the UTS result contribution).
    pub nodes: u64,
}

/// Head-node result collector: the model is that every executed task
/// streams its observation `(id, delta)` to the head node, which
/// deduplicates by id. At-least-once re-execution after a kill therefore
/// still yields an exactly-once *observed* result.
#[derive(Debug, Default)]
pub struct Collector {
    seen: HashSet<u64>,
    /// Deduplicated result (UTS nodes / PFor elements).
    pub unique: u64,
    /// Order-independent checksum: wrapping sum of first-seen task ids.
    pub checksum: u64,
    /// Duplicate observations absorbed (re-executed tasks).
    pub dups: u64,
}

impl Collector {
    pub fn observe(&mut self, id: u64, delta: u64) {
        if self.seen.insert(id) {
            self.unique += delta;
            self.checksum = self.checksum.wrapping_add(id);
        } else {
            self.dups += 1;
        }
    }
}

/// A steal-lineage record: a batch of tasks handed to `thief`, kept (never
/// retired) at the giver so it can be replayed if the thief dies.
#[derive(Clone, Debug)]
pub struct Batch {
    pub thief: WorkerId,
    pub tasks: Vec<Task>,
    pub replayed: bool,
}

/// Shared fail-stop recovery state of a BoT run (host view of what each
/// worker keeps in its own segment, plus the head-node collector).
#[derive(Debug)]
pub struct Recovery {
    /// `lineage[giver]` — batches that giver handed away.
    pub lineage: Vec<Vec<Batch>>,
    /// The worker currently responsible for the root task.
    pub root_holder: WorkerId,
    root_task: Task,
    pub collector: Collector,
    /// Tasks resident in bags of workers at their moment of death.
    pub lost_tasks: u64,
    /// Tasks re-injected by lineage replay (incl. root re-adoption).
    pub reexec_tasks: u64,
}

impl Recovery {
    pub fn new(workers: usize, root: Task) -> Recovery {
        Recovery {
            lineage: (0..workers).map(|_| Vec::new()).collect(),
            root_holder: 0,
            root_task: root,
            collector: Collector::default(),
            lost_tasks: 0,
            reexec_tasks: 0,
        }
    }

    /// The giver records a batch it is about to hand to `thief`.
    pub fn record_batch(&mut self, giver: WorkerId, thief: WorkerId, tasks: &[Task]) {
        self.lineage[giver].push(Batch {
            thief,
            tasks: tasks.to_vec(),
            replayed: false,
        });
    }

    /// `giver` confirmed `dead` dead: re-inject every un-replayed batch it
    /// gave that worker into `bag`. Returns the number of tasks re-injected
    /// (the giver must bump its `created` by as much).
    pub fn replay_batches(&mut self, giver: WorkerId, dead: WorkerId, bag: &mut Vec<Task>) -> u64 {
        let mut k = 0;
        for b in &mut self.lineage[giver] {
            if b.thief == dead && !b.replayed {
                b.replayed = true;
                k += b.tasks.len() as u64;
                bag.extend(b.tasks.iter().copied());
            }
        }
        self.reexec_tasks += k;
        k
    }

    /// Root coverage: the root task is a batch recorded at the host. When
    /// its holder is confirmed dead, the lowest live worker re-injects it
    /// and becomes the holder. `dead` is the caller's sparse confirmed-dead
    /// set; soundness of confirmation (live workers are never confirmed)
    /// makes "all lower ids confirmed dead" hold for at most one live
    /// worker. Returns true if `me` adopted (it must bump `created` by 1).
    pub fn maybe_adopt_root(
        &mut self,
        me: WorkerId,
        dead: &std::collections::BTreeSet<WorkerId>,
        bag: &mut Vec<Task>,
    ) -> bool {
        if dead.contains(&self.root_holder) && dead.range(..me).count() == me {
            bag.push(self.root_task);
            self.root_holder = me;
            self.reexec_tasks += 1;
            return true;
        }
        false
    }
}

/// Result of a bag-of-tasks run.
#[derive(Debug, Clone)]
pub struct BotReport {
    /// Virtual makespan, including termination detection and the final
    /// count reduction.
    pub elapsed: VTime,
    /// Total nodes counted (must equal the tree size). In recovery mode
    /// this is the head node's deduplicated count.
    pub nodes: u64,
    /// Order-independent checksum of observed task ids (recovery mode).
    pub checksum: u64,
    pub steals_ok: u64,
    pub steals_failed: u64,
    /// Messages handled by receivers (two-sided runtimes).
    pub messages: u64,
    /// Token rounds until termination fired.
    pub token_rounds: u64,
    /// Workers permanently killed during the run.
    pub dead_workers: u64,
    /// Tasks lost with dead workers' bags.
    pub lost_tasks: u64,
    /// Tasks re-injected by lineage replay.
    pub reexec_tasks: u64,
    /// Duplicate result observations absorbed by the head-node dedup.
    pub dup_results: u64,
    pub fabric: FabricStats,
    pub steps: u64,
}

impl BotReport {
    /// UTS throughput in nodes per second of virtual time.
    pub fn throughput(&self) -> f64 {
        self.nodes as f64 / self.elapsed.as_secs_f64()
    }
}

/// Shared helper: expand one node, pushing children into `bag`, returning
/// (children, visit cost at the given compute scale).
pub fn expand_node(
    spec: &UtsSpec,
    task: NodeTask,
    bag: &mut Vec<NodeTask>,
    compute_scale: f64,
) -> (u32, VTime) {
    let (digest, depth) = task;
    let children = spec.children(&digest, depth);
    let n = children.len() as u32;
    for c in children {
        bag.push((c, depth + 1));
    }
    (n, spec.visit_cost(n).scale(compute_scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_apps::uts::presets;

    #[test]
    fn expand_matches_spec() {
        let spec = presets::tiny();
        let mut bag = Vec::new();
        let root = (spec.root(), 0u32);
        let (n, cost) = expand_node(&spec, root, &mut bag, 1.0);
        assert_eq!(n as usize, bag.len());
        assert_eq!(n, spec.num_children(&spec.root(), 0));
        assert_eq!(cost, spec.visit_cost(n));
        // Children are at depth 1.
        assert!(bag.iter().all(|&(_, d)| d == 1));
    }

    #[test]
    fn expand_scales_cost() {
        let spec = presets::tiny();
        let mut bag = Vec::new();
        let (_, c1) = expand_node(&spec, (spec.root(), 0), &mut bag, 1.0);
        bag.clear();
        let (_, c2) = expand_node(&spec, (spec.root(), 0), &mut bag, 2.0);
        assert_eq!(c2, c1.scale(2.0));
    }

    #[test]
    fn workload_uts_matches_expand_node() {
        let spec = presets::tiny();
        let w = Workload::Uts(spec.clone());
        let mut bag = Vec::new();
        let (n, obs, cost) = w.execute(w.root_task(), &mut bag, 1.0);
        let mut legacy = Vec::new();
        let (n2, cost2) = expand_node(&spec, (spec.root(), 0), &mut legacy, 1.0);
        assert_eq!(n, n2);
        assert_eq!(cost, cost2);
        assert_eq!(bag.len(), legacy.len());
        assert_eq!(obs.expect("uts observes every node").1, 1);
    }

    #[test]
    fn workload_pfor_splits_to_grain_and_observes_leaves() {
        let w = Workload::Pfor(PforBag { n: 64, grain: 8, m: VTime::us(1) });
        let mut bag = vec![w.root_task()];
        let mut total = 0;
        let mut ids = HashSet::new();
        while let Some(t) = bag.pop() {
            let (_, obs, _) = w.execute(t, &mut bag, 1.0);
            if let Some((id, delta)) = obs {
                assert!(ids.insert(id), "leaf ids must be unique");
                total += delta;
            }
        }
        assert_eq!(total, 64);
        assert_eq!(w.expected(), 64);
    }

    #[test]
    fn collector_dedups_by_id() {
        let mut c = Collector::default();
        c.observe(7, 1);
        c.observe(9, 3);
        c.observe(7, 1);
        assert_eq!(c.unique, 4);
        assert_eq!(c.dups, 1);
        assert_eq!(c.checksum, 16);
    }

    #[test]
    fn recovery_replays_each_batch_once() {
        let mut r = Recovery::new(4, Task::Range(0, 10));
        let batch = [Task::Range(0, 5), Task::Range(5, 10)];
        r.record_batch(1, 3, &batch);
        let mut bag = Vec::new();
        assert_eq!(r.replay_batches(1, 3, &mut bag), 2);
        assert_eq!(bag.len(), 2);
        // A second confirmation of the same death replays nothing.
        assert_eq!(r.replay_batches(1, 3, &mut bag), 0);
        // Other givers have nothing recorded for that thief.
        assert_eq!(r.replay_batches(2, 3, &mut bag), 0);
    }

    #[test]
    fn root_adoption_goes_to_lowest_live() {
        let mut r = Recovery::new(4, Task::Range(0, 10));
        let mut bag = Vec::new();
        let mut dead = std::collections::BTreeSet::new();
        dead.insert(0);
        // Worker 2 is not the lowest live worker (1 is): no adoption.
        assert!(!r.maybe_adopt_root(2, &dead, &mut bag));
        assert!(r.maybe_adopt_root(1, &dead, &mut bag));
        assert_eq!(r.root_holder, 1);
        assert_eq!(bag.len(), 1);
        // Holder is alive again: nobody adopts.
        assert!(!r.maybe_adopt_root(2, &dead, &mut bag));
    }
}
