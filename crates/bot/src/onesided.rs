//! One-sided (SAWS/Scioto-style) bag-of-tasks work stealing.
//!
//! Each worker keeps a bag of unexpanded tasks. The bag's control words
//! — a lock and the current size — live in the owner's pinned segment, so a
//! thief can steal **half the bag** entirely one-sidedly:
//!
//! 1. `CAS` the bag lock (failure = failed steal attempt),
//! 2. `GET` the size (empty → release, failed attempt),
//! 3. take `⌈size/2⌉` of the *oldest* tasks (steal-half, Hendler & Shavit),
//!    `PUT` the new size, release the lock, and transfer
//!    `k · TASK_BYTES` of payload.
//!
//! The victim is never interrupted — the property the paper credits for
//! SAWS's scalability. Termination uses the one-sided Mattern token: the
//! holder writes the token record into its successor's segment; idle
//! workers poll their own slot at local cost.
//!
//! ## Fail-stop recovery (recovery-armed fault plans)
//!
//! With `kill=W@T` entries (or `recover=on`) in the fault plan, the runtime
//! switches to the crash-tolerant protocol documented in
//! `docs/PROTOCOLS.md`:
//!
//! * **Transfer-counted steals.** The take step bumps `victim.consumed`
//!   and `thief.created` by the batch size (one extra one-sided AMO folded
//!   into the size update), so `created − consumed == bag size` holds *per
//!   worker* — a dead worker's counters and bag vanish together without
//!   unbalancing the live sums.
//! * **Steal lineage.** The thief appends a small fixed-size descriptor
//!   (thief id, batch size, region offset) to the victim's journal word,
//!   which shares the victim's 64-byte control line with the size word —
//!   the descriptor rides the size put the thief already pays, before the
//!   lock release becomes visible. The task payload itself is *not*
//!   re-written: the batch bytes are already resident in the victim's
//!   bag region, which the victim copies aside (a local, amortized cost)
//!   before recycling any slot a live descriptor still references. When
//!   the victim's lease registry confirms the thief dead, the victim
//!   re-injects the batch. The head-node collector dedups re-executed
//!   observations by task id. Together with the lease mirror being a
//!   local read, arming therefore charges **zero extra virtual time**
//!   until a death is actually confirmed.
//! * **Termination with holes.** Token rounds are tagged by their
//!   initiator (lowest non-confirmed-dead worker) and stamped with their
//!   start time; forwarders skip confirmed-dead successors and stall on
//!   unconfirmed ones, and the initiator only fires a balanced double
//!   round whose start postdates every death confirmation it knows of —
//!   so a round can never complete "around" a death before every giver
//!   has replayed its lineage to the dead worker.

use dcs_apps::uts::UtsSpec;
use dcs_sim::{
    Actor, Engine, FabricMode, FaultPlan, GlobalAddr, Machine, MachineConfig, MachineProfile,
    ScheduleHook, SimRng, Step, VTime, WorkerId,
};

use crate::termination::{
    accumulate, round_from_old_incarnation, round_initiator, tag_round_epoch, Detector, Token,
};
use crate::{BotReport, Counters, PforBag, Recovery, Task, Workload, TASK_BYTES};

/// How much of a victim's bag a successful steal takes.
///
/// Dinan et al. and SAWS both argue for steal-half on UTS-like workloads;
/// [`run_uts_with`] lets the `ablate_stealhalf` bench quantify that design
/// choice on this fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealAmount {
    /// Take ⌊size/2⌋ tasks (requires size ≥ 2).
    Half,
    /// Take exactly one task (requires size ≥ 2 so the owner keeps one).
    One,
}

/// Segment layout (word indices).
const W_LOCK: u32 = 0;
const W_SIZE: u32 = 1;
const W_TOK_ROUND: u32 = 2;
const W_TOK_CREATED: u32 = 3;
const W_TOK_CONSUMED: u32 = 4;
/// Round start stamp — written and read only by recovery-armed runs, so
/// unarmed runs stay bit-identical to the pre-recovery protocol.
const W_TOK_START: u32 = 5;
/// Lineage journal tail — written and read only by recovery-armed runs.
/// The descriptor ({thief, batch size, region offset} packed into the
/// journal) is the whole per-steal recovery write: the payload is never
/// re-written (see the module doc).
const W_JRNL: u32 = 6;
const RESERVED: u32 = 7 * 8;

/// Shared state of a one-sided BoT run.
pub struct BotWorld {
    pub m: Machine,
    pub bags: Vec<Vec<Task>>,
    pub counters: Vec<Counters>,
    pub recovery: Recovery,
    pub token_rounds: u64,
}

enum BState {
    Work,
    Idle,
    /// Holding `victim`'s bag lock from the previous step.
    StealTake { victim: WorkerId },
}

struct BotWorker {
    me: WorkerId,
    n: usize,
    work: Workload,
    amount: StealAmount,
    armed: bool,
    scale: f64,
    rng: SimRng,
    state: BState,
    /// Detector state; used while this worker believes it is the initiator.
    detector: Detector,
    token_outstanding: bool,
    /// Last token round this worker forwarded (non-initiators).
    forwarded_round: u64,
    /// Peers this worker has confirmed dead via the lease registry.
    /// Sparse: only confirmed workers appear, so scans over it cost
    /// O(confirmed), not O(W).
    dead: std::collections::BTreeSet<WorkerId>,
    /// Position in the machine's death-candidate feed
    /// ([`Machine::death_candidates`]); replaces an O(W) sweep per scan.
    death_cursor: usize,
    steals_ok: u64,
    steals_failed: u64,
    halted: bool,
}

fn word(me: WorkerId, w: u32) -> GlobalAddr {
    GlobalAddr::new(me, w * 8)
}

impl BotWorker {
    fn read_token(m: &mut Machine, me: WorkerId, armed: bool) -> (Token, VTime) {
        let (round, c) = m.get_u64(me, word(me, W_TOK_ROUND));
        let (created, _) = m.get_u64(me, word(me, W_TOK_CREATED));
        let (consumed, _) = m.get_u64(me, word(me, W_TOK_CONSUMED));
        let start_ns = if armed {
            m.get_u64(me, word(me, W_TOK_START)).0
        } else {
            0
        };
        (
            Token {
                round,
                created,
                consumed,
                start_ns,
                ..Token::default()
            },
            c,
        )
    }

    /// Write the token into `to`'s slot: a 24-byte one-sided put (32 bytes
    /// with the recovery-mode start stamp).
    fn put_token(m: &mut Machine, me: WorkerId, to: WorkerId, tok: Token, armed: bool) -> VTime {
        let cost = m.put_u64(me, word(to, W_TOK_ROUND), tok.round);
        m.post_put_u64_unsignaled(me, word(to, W_TOK_CREATED), tok.created);
        m.post_put_u64_unsignaled(me, word(to, W_TOK_CONSUMED), tok.consumed);
        if armed {
            m.post_put_u64_unsignaled(me, word(to, W_TOK_START), tok.start_ns);
        }
        cost
    }

    /// The lowest worker this one has not confirmed dead — every live
    /// worker converges on the same answer because confirmation is sound.
    /// The dead set is sorted, so this walks its prefix: O(confirmed).
    fn initiator(&self) -> WorkerId {
        let mut c = 0;
        for &d in &self.dead {
            if d == c {
                c += 1;
            } else {
                break;
            }
        }
        debug_assert!(c < self.n, "self is never confirmed dead");
        c
    }

    /// Next ring successor not confirmed dead; `None` when every other
    /// worker is. Skips only confirmed-dead peers, so the walk costs
    /// O(confirmed), not O(W).
    fn succ_live(&self) -> Option<WorkerId> {
        (1..self.n)
            .map(|d| (self.me + d) % self.n)
            .find(|p| !self.dead.contains(p))
    }

    /// Mark `d` confirmed dead: replay my lineage batches to it and adopt
    /// the root if I am now responsible for it.
    fn confirm(&mut self, d: WorkerId, w: &mut BotWorld) -> VTime {
        if d == self.me || self.dead.contains(&d) {
            return VTime::ZERO;
        }
        self.dead.insert(d);
        if self.token_outstanding {
            // The outstanding round's token may have died in the dead
            // worker's slot. Abandon the round — burning its sequence
            // number, since forwarders already recorded it — and re-seed.
            self.detector.rounds += 1;
            self.token_outstanding = false;
        }
        let me = self.me;
        let mut k = w.recovery.replay_batches(me, d, &mut w.bags[me]);
        if w.recovery.maybe_adopt_root(me, &self.dead, &mut w.bags[me]) {
            k += 1;
        }
        if k > 0 {
            w.counters[me].created += k;
            // Publish the new size so thieves can see the replayed work.
            return w.m.put_u64(me, word(me, W_SIZE), w.bags[me].len() as u64);
        }
        w.m.local_op(me)
    }

    /// Read the locally mirrored heartbeat/lease registry and confirm every
    /// peer whose lease has expired. The scan itself is step bookkeeping
    /// over a local mirror (like the `self.dead` checks) and charges
    /// nothing; only an actual confirmation costs time.
    ///
    /// Driven by the machine's death-candidate feed: only workers whose
    /// suspicion status could have changed since the last scan are
    /// re-checked, so total scan cost over a run is O(status changes)
    /// instead of O(W) per step. Candidates are processed in increasing id
    /// order, matching the old `0..n` sweep's confirmation order.
    fn scan_confirm(&mut self, now: VTime, w: &mut BotWorld) -> VTime {
        let mut cands: Vec<WorkerId> = Vec::new();
        w.m.death_candidates(&mut self.death_cursor, now, &mut cands);
        if cands.is_empty() {
            return VTime::ZERO;
        }
        cands.sort_unstable();
        cands.dedup();
        let mut cost = VTime::ZERO;
        for p in cands {
            if p != self.me && !self.dead.contains(&p) && w.m.confirmed_dead(p, now) {
                cost += self.confirm(p, w);
            }
        }
        cost
    }

    /// Termination check + token duties performed while idle (fault-free
    /// protocol). Returns the cost, and sets the machine's done flag when
    /// detection fires.
    fn token_duty(&mut self, now: VTime, w: &mut BotWorld) -> VTime {
        let _ = now;
        let me = self.me;
        let cnt = w.counters[me];
        if self.n == 1 {
            // Degenerate ring: run the detector directly.
            let done = self.detector.round_done(cnt.created, cnt.consumed);
            w.token_rounds = self.detector.rounds;
            if done {
                w.m.set_done();
            }
            return w.m.local_op(me);
        }
        if self.me == 0 {
            let (tok, cost) = Self::read_token(&mut w.m, me, false);
            if self.token_outstanding && tok.round == self.detector.rounds + 1 {
                // Round completed.
                self.token_outstanding = false;
                let done = self.detector.round_done(tok.created, tok.consumed);
                w.token_rounds = self.detector.rounds;
                if done {
                    // Final collective reduction of the per-worker counts
                    // (log₂ P message steps), then raise the flag.
                    let hops = (self.n as f64).log2().ceil() as u64;
                    let reduce =
                        VTime::ns(hops * (w.m.lat().message + w.m.lat().msg_handler));
                    w.m.set_done();
                    return cost + reduce;
                }
            }
            if !self.token_outstanding {
                let tok = self.detector.new_round(cnt.created, cnt.consumed);
                self.token_outstanding = true;
                return cost + Self::put_token(&mut w.m, me, 1, tok, false);
            }
            cost
        } else {
            let (tok, cost) = Self::read_token(&mut w.m, me, false);
            if tok.round > self.forwarded_round {
                self.forwarded_round = tok.round;
                let next = (me + 1) % self.n;
                let out = accumulate(tok, cnt.created, cnt.consumed);
                return cost + Self::put_token(&mut w.m, me, next, out, false);
            }
            cost
        }
    }

    /// Crash-tolerant token duty: the ring skips confirmed-dead workers,
    /// the initiator role falls to the lowest live worker, and a round may
    /// only fire if it started after every known death confirmation.
    fn token_duty_armed(&mut self, now: VTime, w: &mut BotWorld) -> VTime {
        let me = self.me;
        let mut cost = self.scan_confirm(now, w);
        if !w.bags[me].is_empty() {
            // A confirmation just replayed work into my bag: go run it
            // before doing token duty (the caller re-checks state).
            return cost;
        }
        let cnt = w.counters[me];
        let Some(succ) = self.succ_live() else {
            // Every other worker is confirmed dead. Transfer-counted steals
            // make my own balance equivalent to my bag being empty.
            let done = self.detector.round_done(cnt.created, cnt.consumed);
            w.token_rounds = w.token_rounds.max(self.detector.rounds);
            if done {
                w.m.set_done();
            }
            return cost + w.m.local_op(me);
        };
        let (tok, c) = Self::read_token(&mut w.m, me, true);
        cost += c;
        if me == self.initiator() {
            let my_tag = tag_round_epoch(me, w.m.epoch_of(me), self.detector.rounds + 1);
            if self.token_outstanding && tok.round == my_tag {
                self.token_outstanding = false;
                // Stability: fire only if every death I know of was already
                // confirmable when this round started — otherwise some
                // worker folded its counters before replaying its lineage
                // to the newly dead peer.
                let start = VTime::ns(tok.start_ns);
                let stable = self.dead.iter().all(|&d| w.m.confirmed_dead(d, start));
                let done = self.detector.round_done(tok.created, tok.consumed) && stable;
                w.token_rounds = w.token_rounds.max(self.detector.rounds);
                if done {
                    let hops = (self.n as f64).log2().ceil() as u64;
                    let reduce =
                        VTime::ns(hops * (w.m.lat().message + w.m.lat().msg_handler));
                    w.m.set_done();
                    return cost + reduce;
                }
            }
            if !self.token_outstanding {
                if let Some(fail) = w.m.dead_guard(me, succ, now) {
                    // Successor died inside its lease window: the put fails
                    // fast; retry once the lease confirms the hole.
                    return cost + fail;
                }
                let tok = self.detector.new_round_tagged(
                    me,
                    w.m.epoch_of(me),
                    now.as_ns(),
                    cnt.created,
                    cnt.consumed,
                    0,
                    0,
                );
                self.token_outstanding = true;
                return cost + Self::put_token(&mut w.m, me, succ, tok, true);
            }
            cost
        } else {
            // Forward fresh rounds, ignoring any seeded by an initiator I
            // already know to be dead (its tag can never grow again) or by
            // a zombie incarnation the fabric has since evicted (its sums
            // predate the eviction's lineage replay).
            let seeder = round_initiator(tok.round);
            if tok.round > self.forwarded_round
                && !self.dead.contains(&seeder)
                && !round_from_old_incarnation(tok.round, w.m.epoch_of(seeder))
            {
                if let Some(fail) = w.m.dead_guard(me, succ, now) {
                    return cost + fail; // hole not confirmed yet: hold the token
                }
                let out = accumulate(tok, cnt.created, cnt.consumed);
                self.forwarded_round = tok.round;
                return cost + Self::put_token(&mut w.m, me, succ, out, true);
            }
            cost
        }
    }

    fn step_work(&mut self, now: VTime, w: &mut BotWorld) -> Step {
        let me = self.me;
        // Respect a thief holding our bag lock.
        let (lock, _) = w.m.get_u64(me, word(me, W_LOCK));
        if lock != 0 {
            if self.armed {
                let holder = (lock - 1) as usize;
                if self.dead.contains(&holder) || w.m.confirmed_dead(holder, now) {
                    // The take is a single atomic step, so a thief that died
                    // holding our lock transferred nothing: break the lock.
                    let mut cost = self.confirm(holder, w);
                    cost += w.m.put_u64(me, word(me, W_LOCK), 0);
                    return Step::Yield(cost);
                }
            }
            return Step::Yield(w.m.local_op(me));
        }
        let Some(task) = w.bags[me].pop() else {
            self.state = BState::Idle;
            return Step::Yield(w.m.local_op(me));
        };
        let (n_children, obs, cost) = self.work.execute(task, &mut w.bags[me], self.scale);
        let cnt = &mut w.counters[me];
        cnt.consumed += 1;
        cnt.created += n_children as u64;
        if let Some((id, delta)) = obs {
            cnt.nodes += delta;
            if self.armed {
                w.recovery.collector.observe(id, delta);
            }
        }
        // Owner-side size update (local put).
        let size = w.bags[me].len() as u64;
        let c2 = w.m.put_u64(me, word(me, W_SIZE), size);
        Step::Yield(cost + c2)
    }

    fn step_idle(&mut self, now: VTime, w: &mut BotWorld) -> Step {
        let me = self.me;
        if w.m.is_done() {
            // Terminating with work in the bag is a detector bug; it is left
            // observable (not asserted) so schedule exploration can report
            // it: plain runs catch it via the post-run created == consumed
            // assert, hooked runs via `BotCheckOutcome::bags_nonempty`.
            self.halted = true;
            return Step::Halt;
        }
        if !w.bags[me].is_empty() {
            self.state = BState::Work;
            return Step::Yield(w.m.local_op(me));
        }
        let mut cost = if self.armed {
            self.token_duty_armed(now, w)
        } else {
            self.token_duty(now, w)
        };
        if !w.bags[me].is_empty() {
            // Lineage replay refilled the bag mid-duty.
            self.state = BState::Work;
            return Step::Yield(cost);
        }
        if self.n >= 2 {
            let victim = self.rng.victim(self.n, me);
            let mut attempt = true;
            if self.armed {
                if self.dead.contains(&victim) {
                    self.steals_failed += 1;
                    attempt = false;
                } else if let Some(fail) = w.m.dead_guard(me, victim, now) {
                    cost += fail;
                    self.steals_failed += 1;
                    attempt = false;
                }
            }
            if attempt {
                let (old, c) = w.m.cas_u64(me, word(victim, W_LOCK), 0, me as u64 + 1);
                cost += c;
                if old == 0 {
                    self.state = BState::StealTake { victim };
                } else {
                    self.steals_failed += 1;
                }
            }
        }
        Step::Yield(cost)
    }

    fn step_steal(&mut self, now: VTime, w: &mut BotWorld, victim: WorkerId) -> Step {
        let me = self.me;
        self.state = BState::Idle;
        if self.armed {
            if let Some(fail) = w.m.dead_guard(me, victim, now) {
                // Victim died between lock and take; its lock dies with it.
                self.steals_failed += 1;
                return Step::Yield(fail);
            }
        }
        let (size, mut cost) = w.m.get_u64(me, word(victim, W_SIZE));
        if size < 2 {
            // Steal-half leaves half behind: a lone task stays with its
            // owner. Taking the last task would allow a two-worker
            // ping-pong where each side steals it back while the other is
            // lock-blocked, so the task is never executed.
            cost += w.m.post_put_u64_unsignaled(me, word(victim, W_LOCK), 0);
            self.steals_failed += 1;
            return Step::Yield(cost);
        }
        let k = match self.amount {
            StealAmount::Half => (size / 2) as usize,
            StealAmount::One => 1,
        };
        // Steal the *oldest* half: they root the largest subtrees.
        let stolen: Vec<Task> = w.bags[victim].drain(..k).collect();
        if w.m.fabric() == FabricMode::Pipelined {
            // Post the size word and the task-block payload together: the
            // payload read races nothing (the batch slots are ours the
            // moment the size shrinks, and the lock is still held when both
            // verbs are posted), so the copy hides behind the size update's
            // round trip instead of following it.
            let at = now + cost;
            let h_size =
                w.m.post_put_u64(me, word(victim, W_SIZE), (size as usize - k) as u64, at);
            let h_copy = w.m.post_get_bulk(me, victim, k * TASK_BYTES, at);
            if self.armed {
                // Steal lineage (see the Blocking arm below): the journal
                // descriptor rides the posted size put.
                w.recovery.record_batch(victim, me, &stolen);
                let _ = w.m.post_put_u64_unsignaled(me, word(victim, W_JRNL), me as u64);
                w.counters[victim].consumed += k as u64;
                w.counters[me].created += k as u64;
            }
            cost += w.m.post_put_u64_unsignaled(me, word(victim, W_LOCK), 0);
            let (_, f1) = w.m.wait(me, h_size);
            let (_, f2) = w.m.wait(me, h_copy);
            cost = cost.max(f1.max(f2).saturating_sub(now));
        } else {
            cost += w.m.put_u64(me, word(victim, W_SIZE), (size as usize - k) as u64);
            if self.armed {
                // Steal lineage: the descriptor shares the victim's 64-byte
                // control line with W_SIZE, so it rides the size put charged
                // above — same single-packet idiom as the token's trailing
                // words in `put_token` — and the payload is not re-written
                // (the batch bytes are already resident in the victim's bag
                // region; see the module doc). The transfer is counted on
                // both sides so per-worker balance mirrors bag contents.
                w.recovery.record_batch(victim, me, &stolen);
                let _ = w.m.post_put_u64_unsignaled(me, word(victim, W_JRNL), me as u64);
                w.counters[victim].consumed += k as u64;
                w.counters[me].created += k as u64;
            }
            cost += w.m.post_put_u64_unsignaled(me, word(victim, W_LOCK), 0);
            cost += w.m.get_bulk(me, victim, k * TASK_BYTES);
        }
        w.bags[me].extend(stolen);
        w.m.post_put_u64_unsignaled(me, word(me, W_SIZE), w.bags[me].len() as u64);
        self.steals_ok += 1;
        self.state = BState::Work;
        Step::Yield(cost)
    }
}

impl Actor<BotWorld> for BotWorker {
    fn step(&mut self, me: WorkerId, now: VTime, w: &mut BotWorld) -> Step {
        debug_assert_eq!(me, self.me);
        if self.halted {
            return Step::Halt;
        }
        w.m.begin_step(me, now);
        if self.armed && w.m.is_dead(me, now) {
            // Fail-stop: this worker is gone. Its resident tasks are lost
            // with it (survivors re-inject them from lineage records), and
            // any lock it holds is broken by the owner after the lease.
            w.recovery.lost_tasks += w.bags[me].len() as u64;
            w.bags[me].clear();
            self.halted = true;
            return Step::Halt;
        }
        if let Some(until) = w.m.crashed_until(me, now) {
            // Crash-stop window: freeze in place until it ends. A thief
            // frozen mid-steal keeps the victim's bag lock — the victim
            // spins on it exactly as it would on a real hung peer.
            return Step::Yield(until.saturating_sub(now).max(VTime::ns(1)));
        }
        match self.state {
            BState::Work => self.step_work(now, w),
            BState::Idle => self.step_idle(now, w),
            BState::StealTake { victim } => self.step_steal(now, w, victim),
        }
    }
}

/// Run UTS under the one-sided BoT runtime with steal-half (the
/// SAWS/Scioto configuration).
pub fn run_uts(spec: &UtsSpec, workers: usize, profile: MachineProfile, seed: u64) -> BotReport {
    run_uts_with(spec, workers, profile, seed, StealAmount::Half)
}

/// Run UTS with an explicit steal amount (ablation entry point).
pub fn run_uts_with(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    amount: StealAmount,
) -> BotReport {
    run_uts_faulty(spec, workers, profile, seed, amount, FaultPlan::none())
}

/// [`run_uts_with`] under a fault plan. One-sided verbs already retry
/// inside the fabric (time is charged, semantics preserved); crash-stop
/// freezes need no protocol support, and `kill` entries arm the fail-stop
/// recovery protocol.
pub fn run_uts_faulty(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    amount: StealAmount,
    plan: FaultPlan,
) -> BotReport {
    run_workload_faulty(&Workload::Uts(spec.clone()), workers, profile, seed, amount, plan)
}

/// Run PFor as a bag of ranges under the one-sided runtime.
pub fn run_pfor_faulty(
    p: PforBag,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    plan: FaultPlan,
) -> BotReport {
    run_workload_faulty(
        &Workload::Pfor(p),
        workers,
        profile,
        seed,
        StealAmount::Half,
        plan,
    )
}

/// [`run_uts`] with an explicit fabric mode (posted-verb ablation entry
/// point; Blocking is the default everywhere else).
pub fn run_uts_fabric(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    fabric: FabricMode,
) -> BotReport {
    run_workload_fabric(
        &Workload::Uts(spec.clone()),
        workers,
        profile,
        seed,
        StealAmount::Half,
        FaultPlan::none(),
        fabric,
    )
}

/// Run any bag workload under a fault plan.
pub fn run_workload_faulty(
    work: &Workload,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    amount: StealAmount,
    plan: FaultPlan,
) -> BotReport {
    run_workload_fabric(work, workers, profile, seed, amount, plan, FabricMode::Blocking)
}

/// [`run_workload_faulty`] with an explicit fabric mode.
pub fn run_workload_fabric(
    work: &Workload,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    amount: StealAmount,
    plan: FaultPlan,
    fabric: FabricMode,
) -> BotReport {
    let armed = plan.recovery_armed();
    let mut engine = build(work, workers, profile, seed, amount, plan, fabric);
    let report = engine.run();
    let (world, actors) = engine.into_parts();
    let end = report.end_time;

    let live = |p: &usize| !world.m.is_dead(*p, end);
    let created: u64 = (0..workers).filter(live).map(|p| world.counters[p].created).sum();
    let consumed: u64 = (0..workers).filter(live).map(|p| world.counters[p].consumed).sum();
    assert_eq!(created, consumed, "termination fired with outstanding work");
    if armed {
        for p in (0..workers).filter(live) {
            assert!(world.bags[p].is_empty(), "live worker {p} terminated with work");
        }
    }

    let dead_workers = (0..workers).filter(|p| !live(p)).count() as u64;
    BotReport {
        elapsed: end,
        nodes: if armed {
            world.recovery.collector.unique
        } else {
            world.counters.iter().map(|c| c.nodes).sum()
        },
        checksum: world.recovery.collector.checksum,
        steals_ok: actors.iter().map(|a| a.steals_ok).sum(),
        steals_failed: actors.iter().map(|a| a.steals_failed).sum(),
        messages: 0,
        token_rounds: world.token_rounds,
        dead_workers,
        lost_tasks: world.recovery.lost_tasks,
        reexec_tasks: world.recovery.reexec_tasks,
        dup_results: world.recovery.collector.dups,
        fabric: world.m.stats_total(),
        steps: report.steps,
    }
}

/// What a schedule-explored BoT run actually did — raw observations for
/// `dcs-check`'s termination oracle, with no asserts of its own (the checker
/// turns mismatches into reported violations instead of panics).
#[derive(Clone, Debug)]
pub struct BotCheckOutcome {
    /// UTS nodes expanded across all workers (raw, duplicates included).
    pub nodes: u64,
    /// Head-node deduplicated result (equals `nodes` when fault-free).
    pub unique: u64,
    /// Order-independent checksum of first-seen task ids.
    pub checksum: u64,
    /// Global created / consumed task counts over workers still alive when
    /// the run ended — termination *safety* is `created == consumed`.
    pub created: u64,
    pub consumed: u64,
    /// Live workers whose bag still held tasks when the run ended (must be
    /// empty: terminating with resident work loses it).
    pub bags_nonempty: Vec<WorkerId>,
    /// Workers killed by the fault plan before the run ended.
    pub dead_workers: Vec<WorkerId>,
    /// Token rounds the detector ran.
    pub token_rounds: u64,
    /// Engine steps taken — bounded, so an exploration that livelocks is
    /// caught by the engine's step ceiling rather than hanging the checker.
    pub steps: u64,
}

/// Run UTS with the engine's step order chosen by `hook` (fault-free), and
/// return raw observations instead of an asserted [`BotReport`].
pub fn run_uts_hooked<H: ScheduleHook + ?Sized>(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    hook: &mut H,
) -> BotCheckOutcome {
    run_uts_hooked_faulty(spec, workers, profile, seed, hook, FaultPlan::none())
}

/// [`run_uts_hooked`] under a fault plan — the entry point of the
/// crash-schedule oracle, which explores kill interleavings.
pub fn run_uts_hooked_faulty<H: ScheduleHook + ?Sized>(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    hook: &mut H,
    plan: FaultPlan,
) -> BotCheckOutcome {
    run_uts_hooked_fabric(spec, workers, profile, seed, hook, plan, FabricMode::Blocking)
}

/// [`run_uts_hooked_faulty`] with an explicit fabric mode — lets the
/// checker explore interleavings at the posted-verb protocol's extra
/// yield points (between a steal's post and its completion).
pub fn run_uts_hooked_fabric<H: ScheduleHook + ?Sized>(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    hook: &mut H,
    plan: FaultPlan,
    fabric: FabricMode,
) -> BotCheckOutcome {
    let armed = plan.recovery_armed();
    let mut engine = build(
        &Workload::Uts(spec.clone()),
        workers,
        profile,
        seed,
        StealAmount::Half,
        plan,
        fabric,
    );
    let report = engine.run_with_hook(hook);
    let (world, _actors) = engine.into_parts();
    let end = report.end_time;
    let live = |p: &usize| !world.m.is_dead(*p, end);
    let raw_nodes: u64 = world.counters.iter().map(|c| c.nodes).sum();
    BotCheckOutcome {
        nodes: raw_nodes,
        unique: if armed {
            world.recovery.collector.unique
        } else {
            raw_nodes
        },
        checksum: world.recovery.collector.checksum,
        created: (0..workers).filter(live).map(|p| world.counters[p].created).sum(),
        consumed: (0..workers).filter(live).map(|p| world.counters[p].consumed).sum(),
        bags_nonempty: world
            .bags
            .iter()
            .enumerate()
            .filter(|(p, b)| !b.is_empty() && live(p))
            .map(|(p, _)| p)
            .collect(),
        dead_workers: (0..workers).filter(|p| !live(p)).collect(),
        token_rounds: world.token_rounds,
        steps: report.steps,
    }
}

/// Assemble the machine, seeded world and worker actors of a bag run.
fn build(
    work: &Workload,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    amount: StealAmount,
    plan: FaultPlan,
    fabric: FabricMode,
) -> Engine<BotWorld, BotWorker> {
    let scale = profile.compute_scale;
    let armed = plan.recovery_armed();
    let m = Machine::new(
        MachineConfig::new(workers, profile)
            .with_seg_bytes(1 << 16)
            .with_reserved(RESERVED)
            .with_faults(plan)
            .with_fabric(fabric),
    );
    let root = work.root_task();
    let mut world = BotWorld {
        m,
        bags: (0..workers).map(|_| Vec::new()).collect(),
        counters: vec![Counters::default(); workers],
        recovery: Recovery::new(workers, root),
        token_rounds: 0,
    };
    world.bags[0].push(root);
    world.counters[0].created = 1;
    world.m.put_u64(0, word(0, W_SIZE), 1);

    let actors: Vec<BotWorker> = (0..workers)
        .map(|me| BotWorker {
            me,
            n: workers,
            work: work.clone(),
            amount,
            armed,
            scale,
            rng: SimRng::for_worker(seed, me),
            state: if me == 0 { BState::Work } else { BState::Idle },
            detector: Detector::default(),
            token_outstanding: false,
            forwarded_round: 0,
            dead: std::collections::BTreeSet::new(),
            death_cursor: 0,
            steals_ok: 0,
            steals_failed: 0,
            halted: false,
        })
        .collect();

    Engine::new(world, actors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_apps::uts::{presets, serial_count};
    use dcs_sim::profiles;

    #[test]
    fn counts_match_serial_various_workers() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for workers in [1, 2, 4, 8] {
            let r = run_uts(&spec, workers, profiles::test_profile(), 42);
            assert_eq!(r.nodes, expected, "P={workers}");
        }
    }

    #[test]
    fn steals_happen_and_are_bulk() {
        let spec = presets::tiny();
        let r = run_uts(&spec, 4, profiles::test_profile(), 1);
        assert!(r.steals_ok > 0);
        // Steal-half moves many tasks per steal: far fewer steals than nodes.
        assert!(r.steals_ok * 20 < r.nodes, "{} steals", r.steals_ok);
        assert_eq!(r.messages, 0, "one-sided runtime sends no messages");
    }

    #[test]
    fn termination_needs_at_least_two_rounds() {
        let spec = presets::tiny();
        let r = run_uts(&spec, 2, profiles::test_profile(), 3);
        assert!(r.token_rounds >= 2);
    }

    #[test]
    fn deterministic() {
        let spec = presets::tiny();
        let a = run_uts(&spec, 4, profiles::test_profile(), 9);
        let b = run_uts(&spec, 4, profiles::test_profile(), 9);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steals_ok, b.steals_ok);
    }

    #[test]
    fn counts_survive_transient_faults() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for workers in [2, 4, 8] {
            let plan = FaultPlan::transient(0.05, 77);
            let r = run_uts_faulty(&spec, workers, profiles::test_profile(), 19, StealAmount::Half, plan);
            assert_eq!(r.nodes, expected, "P={workers}");
            assert!(r.fabric.retries > 0, "faults should force verb retries");
        }
    }

    #[test]
    fn counts_survive_crash_window() {
        use dcs_sim::CrashWindow;
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        let plan = FaultPlan::none().with_crash(CrashWindow {
            worker: 2,
            from: VTime::us(3),
            until: VTime::us(400),
        });
        let r = run_uts_faulty(&spec, 4, profiles::test_profile(), 21, StealAmount::Half, plan);
        assert_eq!(r.nodes, expected);
    }

    #[test]
    fn no_fault_plan_is_identical_to_plain_run() {
        let spec = presets::tiny();
        let plain = run_uts(&spec, 4, profiles::test_profile(), 9);
        let none = run_uts_faulty(
            &spec,
            4,
            profiles::test_profile(),
            9,
            StealAmount::Half,
            FaultPlan::none(),
        );
        assert_eq!(plain.elapsed, none.elapsed);
        assert_eq!(plain.steps, none.steps);
        assert_eq!(plain.steals_ok, none.steals_ok);
    }

    #[test]
    fn pipelined_matches_counts_and_shortens_steals() {
        let spec = presets::small();
        let expected = serial_count(&spec).nodes;
        let blk = run_uts_fabric(&spec, 8, profiles::itoa(), 5, FabricMode::Blocking);
        let pip = run_uts_fabric(&spec, 8, profiles::itoa(), 5, FabricMode::Pipelined);
        assert_eq!(blk.nodes, expected);
        assert_eq!(pip.nodes, expected);
        assert!(pip.steals_ok > 0);
        assert!(
            pip.fabric.max_inflight >= 2,
            "steal-half must post size + payload together, got depth {}",
            pip.fabric.max_inflight
        );
        assert_eq!(blk.fabric.max_inflight, 1, "blocking never overlaps");
        assert!(
            pip.elapsed < blk.elapsed,
            "hiding the payload copy must shorten the run: {:?} vs {:?}",
            pip.elapsed,
            blk.elapsed
        );
    }

    #[test]
    fn pipelined_is_deterministic() {
        let spec = presets::tiny();
        let a = run_uts_fabric(&spec, 4, profiles::test_profile(), 9, FabricMode::Pipelined);
        let b = run_uts_fabric(&spec, 4, profiles::test_profile(), 9, FabricMode::Pipelined);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steals_ok, b.steals_ok);
        assert_eq!(a.fabric, b.fabric);
    }

    #[test]
    fn scaling_reduces_elapsed() {
        let spec = presets::small();
        let t1 = run_uts(&spec, 1, profiles::itoa(), 5).elapsed;
        let t8 = run_uts(&spec, 8, profiles::itoa(), 5).elapsed;
        let speedup = t1.as_ns() as f64 / t8.as_ns() as f64;
        assert!(speedup > 4.0, "speedup {speedup} too low");
    }

    #[test]
    fn pfor_counts_match_various_workers() {
        let p = PforBag { n: 256, grain: 8, m: VTime::us(2) };
        for workers in [1, 2, 4, 8] {
            let r = run_pfor_faulty(p, workers, profiles::test_profile(), 7, FaultPlan::none());
            assert_eq!(r.nodes, 256, "P={workers}");
        }
    }
}

#[cfg(test)]
mod steal_amount_tests {
    use super::*;
    use dcs_apps::uts::{presets, serial_count};
    use dcs_sim::profiles;

    #[test]
    fn steal_one_and_steal_half_agree_on_counts() {
        // Note: on UTS a single stolen node roots a whole subtree, so
        // steal-one is less pathological here than on flat bags; the
        // quantitative comparison lives in the ablate_stealhalf bench.
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for amount in [StealAmount::Half, StealAmount::One] {
            for p in [2usize, 4, 8] {
                let r = run_uts_with(&spec, p, profiles::itoa(), 3, amount);
                assert_eq!(r.nodes, expected, "{amount:?} P={p}");
            }
        }
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use dcs_apps::uts::{presets, serial_count};
    use dcs_sim::profiles;

    #[test]
    fn survives_single_kill_with_exact_result() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for at_us in [5u64, 50, 100] {
            let plan = FaultPlan::none().with_kill(2, VTime::us(at_us));
            let r = run_uts_faulty(&spec, 4, profiles::test_profile(), 19, StealAmount::Half, plan);
            assert_eq!(r.nodes, expected, "kill at {at_us}us");
            assert_eq!(r.dead_workers, 1);
        }
    }

    #[test]
    fn survives_killing_worker_zero() {
        // Worker 0 starts with the root and is the termination initiator:
        // both roles must migrate to the lowest live worker.
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for at_us in [3u64, 40] {
            let plan = FaultPlan::none().with_kill(0, VTime::us(at_us));
            let r = run_uts_faulty(&spec, 4, profiles::test_profile(), 23, StealAmount::Half, plan);
            assert_eq!(r.nodes, expected, "kill 0 at {at_us}us");
        }
    }

    #[test]
    fn survives_half_the_workers_dying() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        let plan = FaultPlan::none()
            .with_kill(1, VTime::us(10))
            .with_kill(3, VTime::us(60))
            .with_kill(5, VTime::us(25))
            .with_kill(7, VTime::us(120));
        let r = run_uts_faulty(&spec, 8, profiles::test_profile(), 29, StealAmount::Half, plan);
        assert_eq!(r.nodes, expected);
        assert_eq!(r.dead_workers, 4);
    }

    #[test]
    fn killed_runs_are_deterministic() {
        let spec = presets::tiny();
        let plan = FaultPlan::none()
            .with_kill(1, VTime::us(15))
            .with_kill(2, VTime::us(80));
        let a = run_uts_faulty(&spec, 4, profiles::test_profile(), 31, StealAmount::Half, plan.clone());
        let b = run_uts_faulty(&spec, 4, profiles::test_profile(), 31, StealAmount::Half, plan);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.reexec_tasks, b.reexec_tasks);
    }

    #[test]
    fn armed_without_kills_matches_fault_free_result() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        let plain = run_uts(&spec, 4, profiles::test_profile(), 9);
        let armed = run_uts_faulty(
            &spec,
            4,
            profiles::test_profile(),
            9,
            StealAmount::Half,
            FaultPlan::none().with_recovery(),
        );
        assert_eq!(armed.nodes, expected);
        assert_eq!(armed.dup_results, 0, "no kills → nothing re-executed");
        assert_eq!(armed.lost_tasks, 0);
        // Lineage tracking overhead must stay within the 2% budget.
        let ratio = armed.elapsed.as_ns() as f64 / plain.elapsed.as_ns() as f64;
        assert!(ratio <= 1.02, "armed overhead ratio {ratio}");
    }

    #[test]
    fn pfor_survives_kills() {
        let p = PforBag { n: 512, grain: 8, m: VTime::us(2) };
        let plan = FaultPlan::none()
            .with_kill(2, VTime::us(40))
            .with_kill(3, VTime::us(90));
        let r = run_pfor_faulty(p, 8, profiles::test_profile(), 11, plan);
        assert_eq!(r.nodes, 512);
    }
}
