//! One-sided (SAWS/Scioto-style) bag-of-tasks work stealing.
//!
//! Each worker keeps a bag of unexpanded UTS nodes. The bag's control words
//! — a lock and the current size — live in the owner's pinned segment, so a
//! thief can steal **half the bag** entirely one-sidedly:
//!
//! 1. `CAS` the bag lock (failure = failed steal attempt),
//! 2. `GET` the size (empty → release, failed attempt),
//! 3. take `⌈size/2⌉` of the *oldest* tasks (steal-half, Hendler & Shavit),
//!    `PUT` the new size, release the lock, and transfer
//!    `k · TASK_BYTES` of payload.
//!
//! The victim is never interrupted — the property the paper credits for
//! SAWS's scalability. Termination uses the one-sided Mattern token: the
//! holder writes the token record into its successor's segment; idle
//! workers poll their own slot at local cost.

use dcs_apps::uts::UtsSpec;
use dcs_sim::{
    Actor, Engine, FaultPlan, GlobalAddr, Machine, MachineConfig, MachineProfile, ScheduleHook,
    SimRng, Step, VTime, WorkerId,
};

use crate::termination::{accumulate, Detector, Token};
use crate::{expand_node, BotReport, Counters, NodeTask, TASK_BYTES};

/// How much of a victim's bag a successful steal takes.
///
/// Dinan et al. and SAWS both argue for steal-half on UTS-like workloads;
/// [`run_uts_with`] lets the `ablate_stealhalf` bench quantify that design
/// choice on this fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealAmount {
    /// Take ⌊size/2⌋ tasks (requires size ≥ 2).
    Half,
    /// Take exactly one task (requires size ≥ 2 so the owner keeps one).
    One,
}

/// Segment layout (word indices).
const W_LOCK: u32 = 0;
const W_SIZE: u32 = 1;
const W_TOK_ROUND: u32 = 2;
const W_TOK_CREATED: u32 = 3;
const W_TOK_CONSUMED: u32 = 4;
const RESERVED: u32 = 5 * 8;

/// Shared state of a one-sided BoT run.
pub struct BotWorld {
    pub m: Machine,
    pub bags: Vec<Vec<NodeTask>>,
    pub counters: Vec<Counters>,
    pub token_rounds: u64,
}

enum BState {
    Work,
    Idle,
    /// Holding `victim`'s bag lock from the previous step.
    StealTake { victim: WorkerId },
}

struct BotWorker {
    me: WorkerId,
    n: usize,
    spec: UtsSpec,
    amount: StealAmount,
    scale: f64,
    rng: SimRng,
    state: BState,
    /// Initiator only (worker 0).
    detector: Detector,
    token_outstanding: bool,
    /// Last token round this worker forwarded (non-initiators).
    forwarded_round: u64,
    steals_ok: u64,
    steals_failed: u64,
    halted: bool,
}

fn word(me: WorkerId, w: u32) -> GlobalAddr {
    GlobalAddr::new(me, w * 8)
}

impl BotWorker {
    fn read_token(m: &mut Machine, me: WorkerId) -> (Token, VTime) {
        let (round, c) = m.get_u64(me, word(me, W_TOK_ROUND));
        let (created, _) = m.get_u64(me, word(me, W_TOK_CREATED));
        let (consumed, _) = m.get_u64(me, word(me, W_TOK_CONSUMED));
        (
            Token {
                round,
                created,
                consumed,
            },
            c,
        )
    }

    /// Write the token into `to`'s slot: a 24-byte one-sided put.
    fn put_token(m: &mut Machine, me: WorkerId, to: WorkerId, tok: Token) -> VTime {
        let cost = m.put_u64(me, word(to, W_TOK_ROUND), tok.round);
        m.put_u64_nb(me, word(to, W_TOK_CREATED), tok.created);
        m.put_u64_nb(me, word(to, W_TOK_CONSUMED), tok.consumed);
        cost
    }

    /// Termination check + token duties performed while idle. Returns the
    /// cost, and sets the machine's done flag when detection fires.
    fn token_duty(&mut self, now: VTime, w: &mut BotWorld) -> VTime {
        let _ = now;
        let me = self.me;
        let cnt = w.counters[me];
        if self.n == 1 {
            // Degenerate ring: run the detector directly.
            let done = self.detector.round_done(cnt.created, cnt.consumed);
            w.token_rounds = self.detector.rounds;
            if done {
                w.m.set_done();
            }
            return w.m.local_op(me);
        }
        if self.me == 0 {
            let (tok, cost) = Self::read_token(&mut w.m, me);
            if self.token_outstanding && tok.round == self.detector.rounds + 1 {
                // Round completed.
                self.token_outstanding = false;
                let done = self.detector.round_done(tok.created, tok.consumed);
                w.token_rounds = self.detector.rounds;
                if done {
                    // Final collective reduction of the per-worker counts
                    // (log₂ P message steps), then raise the flag.
                    let hops = (self.n as f64).log2().ceil() as u64;
                    let reduce =
                        VTime::ns(hops * (w.m.lat().message + w.m.lat().msg_handler));
                    w.m.set_done();
                    return cost + reduce;
                }
            }
            if !self.token_outstanding {
                let tok = self.detector.new_round(cnt.created, cnt.consumed);
                self.token_outstanding = true;
                return cost + Self::put_token(&mut w.m, me, 1, tok);
            }
            cost
        } else {
            let (tok, cost) = Self::read_token(&mut w.m, me);
            if tok.round > self.forwarded_round {
                self.forwarded_round = tok.round;
                let next = (me + 1) % self.n;
                let out = accumulate(tok, cnt.created, cnt.consumed);
                return cost + Self::put_token(&mut w.m, me, next, out);
            }
            cost
        }
    }

    fn step_work(&mut self, w: &mut BotWorld) -> Step {
        let me = self.me;
        // Respect a thief holding our bag lock.
        let (lock, _) = w.m.get_u64(me, word(me, W_LOCK));
        if lock != 0 {
            return Step::Yield(w.m.local_op(me));
        }
        let Some(task) = w.bags[me].pop() else {
            self.state = BState::Idle;
            return Step::Yield(w.m.local_op(me));
        };
        let (n_children, cost) = expand_node(&self.spec, task, &mut w.bags[me], self.scale);
        let cnt = &mut w.counters[me];
        cnt.consumed += 1;
        cnt.created += n_children as u64;
        cnt.nodes += 1;
        // Owner-side size update (local put).
        let size = w.bags[me].len() as u64;
        let c2 = w.m.put_u64(me, word(me, W_SIZE), size);
        Step::Yield(cost + c2)
    }

    fn step_idle(&mut self, now: VTime, w: &mut BotWorld) -> Step {
        let me = self.me;
        if w.m.is_done() {
            // Terminating with work in the bag is a detector bug; it is left
            // observable (not asserted) so schedule exploration can report
            // it: plain runs catch it via the post-run created == consumed
            // assert, hooked runs via `BotCheckOutcome::bags_nonempty`.
            self.halted = true;
            return Step::Halt;
        }
        if !w.bags[me].is_empty() {
            self.state = BState::Work;
            return Step::Yield(w.m.local_op(me));
        }
        let mut cost = self.token_duty(now, w);
        if self.n >= 2 {
            let victim = self.rng.victim(self.n, me);
            let (old, c) = w.m.cas_u64(me, word(victim, W_LOCK), 0, me as u64 + 1);
            cost += c;
            if old == 0 {
                self.state = BState::StealTake { victim };
            } else {
                self.steals_failed += 1;
            }
        }
        Step::Yield(cost)
    }

    fn step_steal(&mut self, w: &mut BotWorld, victim: WorkerId) -> Step {
        let me = self.me;
        self.state = BState::Idle;
        let (size, mut cost) = w.m.get_u64(me, word(victim, W_SIZE));
        if size < 2 {
            // Steal-half leaves half behind: a lone task stays with its
            // owner. Taking the last task would allow a two-worker
            // ping-pong where each side steals it back while the other is
            // lock-blocked, so the task is never executed.
            cost += w.m.put_u64_nb(me, word(victim, W_LOCK), 0);
            self.steals_failed += 1;
            return Step::Yield(cost);
        }
        let k = match self.amount {
            StealAmount::Half => (size / 2) as usize,
            StealAmount::One => 1,
        };
        // Steal the *oldest* half: they root the largest subtrees.
        let stolen: Vec<NodeTask> = w.bags[victim].drain(..k).collect();
        cost += w.m.put_u64(me, word(victim, W_SIZE), (size as usize - k) as u64);
        cost += w.m.put_u64_nb(me, word(victim, W_LOCK), 0);
        cost += w.m.get_bulk(me, victim, k * TASK_BYTES);
        w.bags[me].extend(stolen);
        w.m.put_u64_nb(me, word(me, W_SIZE), w.bags[me].len() as u64);
        self.steals_ok += 1;
        self.state = BState::Work;
        Step::Yield(cost)
    }
}

impl Actor<BotWorld> for BotWorker {
    fn step(&mut self, me: WorkerId, now: VTime, w: &mut BotWorld) -> Step {
        debug_assert_eq!(me, self.me);
        if self.halted {
            return Step::Halt;
        }
        w.m.begin_step(me, now);
        if let Some(until) = w.m.crashed_until(me, now) {
            // Crash-stop window: freeze in place until it ends. A thief
            // frozen mid-steal keeps the victim's bag lock — the victim
            // spins on it exactly as it would on a real hung peer.
            return Step::Yield(until.saturating_sub(now).max(VTime::ns(1)));
        }
        match self.state {
            BState::Work => self.step_work(w),
            BState::Idle => self.step_idle(now, w),
            BState::StealTake { victim } => self.step_steal(w, victim),
        }
    }
}

/// Run UTS under the one-sided BoT runtime with steal-half (the
/// SAWS/Scioto configuration).
pub fn run_uts(spec: &UtsSpec, workers: usize, profile: MachineProfile, seed: u64) -> BotReport {
    run_uts_with(spec, workers, profile, seed, StealAmount::Half)
}

/// Run UTS with an explicit steal amount (ablation entry point).
pub fn run_uts_with(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    amount: StealAmount,
) -> BotReport {
    run_uts_faulty(spec, workers, profile, seed, amount, FaultPlan::none())
}

/// [`run_uts_with`] under a fault plan. One-sided verbs already retry
/// inside the fabric (time is charged, semantics preserved), so the
/// runtime only needs to survive crash-stop freezes.
pub fn run_uts_faulty(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    amount: StealAmount,
    plan: FaultPlan,
) -> BotReport {
    let mut engine = build_uts(spec, workers, profile, seed, amount, plan);
    let report = engine.run();
    let (world, actors) = engine.into_parts();

    let created: u64 = world.counters.iter().map(|c| c.created).sum();
    let consumed: u64 = world.counters.iter().map(|c| c.consumed).sum();
    assert_eq!(created, consumed, "termination fired with outstanding work");

    BotReport {
        elapsed: report.end_time,
        nodes: world.counters.iter().map(|c| c.nodes).sum(),
        steals_ok: actors.iter().map(|a| a.steals_ok).sum(),
        steals_failed: actors.iter().map(|a| a.steals_failed).sum(),
        messages: 0,
        token_rounds: world.token_rounds,
        fabric: world.m.stats_total(),
        steps: report.steps,
    }
}

/// What a schedule-explored BoT run actually did — raw observations for
/// `dcs-check`'s termination oracle, with no asserts of its own (the checker
/// turns mismatches into reported violations instead of panics).
#[derive(Clone, Debug)]
pub struct BotCheckOutcome {
    /// UTS nodes expanded across all workers.
    pub nodes: u64,
    /// Global created / consumed task counts at the moment every worker
    /// halted — termination *safety* is `created == consumed`.
    pub created: u64,
    pub consumed: u64,
    /// Workers whose bag still held tasks when the run ended (must be
    /// empty: terminating with resident work loses it).
    pub bags_nonempty: Vec<WorkerId>,
    /// Token rounds the detector ran.
    pub token_rounds: u64,
    /// Engine steps taken — bounded, so an exploration that livelocks is
    /// caught by the engine's step ceiling rather than hanging the checker.
    pub steps: u64,
}

/// Run UTS with the engine's step order chosen by `hook` (fault-free), and
/// return raw observations instead of an asserted [`BotReport`].
pub fn run_uts_hooked<H: ScheduleHook + ?Sized>(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    hook: &mut H,
) -> BotCheckOutcome {
    let mut engine = build_uts(
        spec,
        workers,
        profile,
        seed,
        StealAmount::Half,
        FaultPlan::none(),
    );
    let report = engine.run_with_hook(hook);
    let (world, _actors) = engine.into_parts();
    BotCheckOutcome {
        nodes: world.counters.iter().map(|c| c.nodes).sum(),
        created: world.counters.iter().map(|c| c.created).sum(),
        consumed: world.counters.iter().map(|c| c.consumed).sum(),
        bags_nonempty: world
            .bags
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(w, _)| w)
            .collect(),
        token_rounds: world.token_rounds,
        steps: report.steps,
    }
}

/// Assemble the machine, seeded world and worker actors of a UTS run.
fn build_uts(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    seed: u64,
    amount: StealAmount,
    plan: FaultPlan,
) -> Engine<BotWorld, BotWorker> {
    let scale = profile.compute_scale;
    let m = Machine::new(
        MachineConfig::new(workers, profile)
            .with_seg_bytes(1 << 16)
            .with_reserved(RESERVED)
            .with_faults(plan),
    );
    let mut world = BotWorld {
        m,
        bags: (0..workers).map(|_| Vec::new()).collect(),
        counters: vec![Counters::default(); workers],
        token_rounds: 0,
    };
    world.bags[0].push((spec.root(), 0));
    world.counters[0].created = 1;
    world.m.put_u64(0, word(0, W_SIZE), 1);

    let actors: Vec<BotWorker> = (0..workers)
        .map(|me| BotWorker {
            me,
            n: workers,
            spec: spec.clone(),
            amount,
            scale,
            rng: SimRng::for_worker(seed, me),
            state: if me == 0 { BState::Work } else { BState::Idle },
            detector: Detector::default(),
            token_outstanding: false,
            forwarded_round: 0,
            steals_ok: 0,
            steals_failed: 0,
            halted: false,
        })
        .collect();

    Engine::new(world, actors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_apps::uts::{presets, serial_count};
    use dcs_sim::profiles;

    #[test]
    fn counts_match_serial_various_workers() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for workers in [1, 2, 4, 8] {
            let r = run_uts(&spec, workers, profiles::test_profile(), 42);
            assert_eq!(r.nodes, expected, "P={workers}");
        }
    }

    #[test]
    fn steals_happen_and_are_bulk() {
        let spec = presets::tiny();
        let r = run_uts(&spec, 4, profiles::test_profile(), 1);
        assert!(r.steals_ok > 0);
        // Steal-half moves many tasks per steal: far fewer steals than nodes.
        assert!(r.steals_ok * 20 < r.nodes, "{} steals", r.steals_ok);
        assert_eq!(r.messages, 0, "one-sided runtime sends no messages");
    }

    #[test]
    fn termination_needs_at_least_two_rounds() {
        let spec = presets::tiny();
        let r = run_uts(&spec, 2, profiles::test_profile(), 3);
        assert!(r.token_rounds >= 2);
    }

    #[test]
    fn deterministic() {
        let spec = presets::tiny();
        let a = run_uts(&spec, 4, profiles::test_profile(), 9);
        let b = run_uts(&spec, 4, profiles::test_profile(), 9);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steals_ok, b.steals_ok);
    }

    #[test]
    fn counts_survive_transient_faults() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for workers in [2, 4, 8] {
            let plan = FaultPlan::transient(0.05, 77);
            let r = run_uts_faulty(&spec, workers, profiles::test_profile(), 19, StealAmount::Half, plan);
            assert_eq!(r.nodes, expected, "P={workers}");
            assert!(r.fabric.retries > 0, "faults should force verb retries");
        }
    }

    #[test]
    fn counts_survive_crash_window() {
        use dcs_sim::CrashWindow;
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        let plan = FaultPlan::none().with_crash(CrashWindow {
            worker: 2,
            from: VTime::us(3),
            until: VTime::us(400),
        });
        let r = run_uts_faulty(&spec, 4, profiles::test_profile(), 21, StealAmount::Half, plan);
        assert_eq!(r.nodes, expected);
    }

    #[test]
    fn no_fault_plan_is_identical_to_plain_run() {
        let spec = presets::tiny();
        let plain = run_uts(&spec, 4, profiles::test_profile(), 9);
        let none = run_uts_faulty(
            &spec,
            4,
            profiles::test_profile(),
            9,
            StealAmount::Half,
            FaultPlan::none(),
        );
        assert_eq!(plain.elapsed, none.elapsed);
        assert_eq!(plain.steps, none.steps);
        assert_eq!(plain.steals_ok, none.steals_ok);
    }

    #[test]
    fn scaling_reduces_elapsed() {
        let spec = presets::small();
        let t1 = run_uts(&spec, 1, profiles::itoa(), 5).elapsed;
        let t8 = run_uts(&spec, 8, profiles::itoa(), 5).elapsed;
        let speedup = t1.as_ns() as f64 / t8.as_ns() as f64;
        assert!(speedup > 4.0, "speedup {speedup} too low");
    }
}

#[cfg(test)]
mod steal_amount_tests {
    use super::*;
    use dcs_apps::uts::{presets, serial_count};
    use dcs_sim::profiles;

    #[test]
    fn steal_one_and_steal_half_agree_on_counts() {
        // Note: on UTS a single stolen node roots a whole subtree, so
        // steal-one is less pathological here than on flat bags; the
        // quantitative comparison lives in the ablate_stealhalf bench.
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for amount in [StealAmount::Half, StealAmount::One] {
            for p in [2usize, 4, 8] {
                let r = run_uts_with(&spec, p, profiles::itoa(), 3, amount);
                assert_eq!(r.nodes, expected, "{amount:?} P={p}");
            }
        }
    }
}
