//! Property tests: random fail-stop kill schedules never change the answer.
//!
//! For both bag-of-tasks runtimes (one-sided CAS/AMO stealing, two-sided
//! message stealing in both victim-selection variants) and both workload
//! shapes (UTS tree expansion, PFor flat ranges), a run that loses up to
//! half the machine at arbitrary times must report exactly the nodes and
//! first-seen-task-id checksum of the same seed's kill-free run — the
//! at-least-once re-execution with head-node dedup makes lost work
//! invisible in the result, only visible in the elapsed time.
//!
//! Schedules are drawn as (victim, time) pairs and thinned to at most
//! ⌊W/2⌋ distinct victims, so a quorum of the machine always survives
//! (the protocols are documented to need one live worker, but W/2 is the
//! bar the paper's ablation argues about). The baseline is the *armed*
//! kill-free run: arming populates the collector, so the checksum is
//! comparable, and a separate unit test already pins armed == unarmed.

use dcs_apps::uts::{presets, serial_count};
use dcs_bot::{onesided, twosided, PforBag};
use dcs_sim::{profiles, FaultPlan, VTime};
use proptest::prelude::*;

/// Thin a raw (victim, at-µs) list to ≤ ⌊workers/2⌋ distinct victims.
fn kill_plan(raw: &[(usize, u64)], workers: usize) -> FaultPlan {
    let mut plan = FaultPlan::none().with_recovery();
    let mut victims: Vec<usize> = Vec::new();
    for &(v, at_us) in raw {
        let v = v % workers;
        if victims.len() >= workers / 2 && !victims.contains(&v) {
            continue;
        }
        if !victims.contains(&v) {
            victims.push(v);
        }
        plan = plan.with_kill(v, VTime::us(at_us));
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn onesided_uts_survives_random_kill_schedules(
        raw in proptest::collection::vec((0usize..8, 1u64..120), 1..5),
        seed in 0u64..1000,
    ) {
        let spec = presets::tiny();
        let workers = 6;
        let truth = serial_count(&spec).nodes;
        let base = onesided::run_uts_faulty(
            &spec, workers, profiles::test_profile(), seed,
            onesided::StealAmount::Half, FaultPlan::none().with_recovery(),
        );
        let killed = onesided::run_uts_faulty(
            &spec, workers, profiles::test_profile(), seed,
            onesided::StealAmount::Half, kill_plan(&raw, workers),
        );
        assert_eq!(base.nodes, truth);
        assert_eq!(killed.nodes, base.nodes, "raw={raw:?} seed={seed}");
        assert_eq!(killed.checksum, base.checksum, "raw={raw:?} seed={seed}");
    }

    #[test]
    fn twosided_uts_survives_random_kill_schedules(
        raw in proptest::collection::vec((0usize..8, 1u64..120), 1..5),
        seed in 0u64..1000,
    ) {
        let spec = presets::tiny();
        let workers = 6;
        let truth = serial_count(&spec).nodes;
        for variant in [twosided::Variant::Random, twosided::Variant::Lifeline] {
            let base = twosided::run_uts_faulty(
                &spec, workers, profiles::test_profile(), variant, seed,
                FaultPlan::none().with_recovery(),
            );
            let killed = twosided::run_uts_faulty(
                &spec, workers, profiles::test_profile(), variant, seed,
                kill_plan(&raw, workers),
            );
            assert_eq!(base.nodes, truth, "{variant:?}");
            assert_eq!(killed.nodes, base.nodes, "{variant:?} raw={raw:?} seed={seed}");
            assert_eq!(killed.checksum, base.checksum, "{variant:?} raw={raw:?} seed={seed}");
        }
    }

    #[test]
    fn onesided_pfor_survives_random_kill_schedules(
        raw in proptest::collection::vec((0usize..8, 1u64..40), 1..5),
        seed in 0u64..1000,
    ) {
        let p = PforBag { n: 256, grain: 8, m: VTime::us(2) };
        let workers = 6;
        let base = onesided::run_pfor_faulty(
            p, workers, profiles::test_profile(), seed,
            FaultPlan::none().with_recovery(),
        );
        let killed = onesided::run_pfor_faulty(
            p, workers, profiles::test_profile(), seed,
            kill_plan(&raw, workers),
        );
        assert_eq!(base.nodes, 256);
        assert_eq!(killed.nodes, base.nodes, "raw={raw:?} seed={seed}");
        assert_eq!(killed.checksum, base.checksum, "raw={raw:?} seed={seed}");
    }

    #[test]
    fn twosided_pfor_survives_random_kill_schedules(
        raw in proptest::collection::vec((0usize..8, 1u64..40), 1..5),
        seed in 0u64..1000,
    ) {
        let p = PforBag { n: 256, grain: 8, m: VTime::us(2) };
        let workers = 6;
        for variant in [twosided::Variant::Random, twosided::Variant::Lifeline] {
            let base = twosided::run_pfor_faulty(
                p, workers, profiles::test_profile(), variant, seed,
                FaultPlan::none().with_recovery(),
            );
            let killed = twosided::run_pfor_faulty(
                p, workers, profiles::test_profile(), variant, seed,
                kill_plan(&raw, workers),
            );
            assert_eq!(base.nodes, 256, "{variant:?}");
            assert_eq!(killed.nodes, base.nodes, "{variant:?} raw={raw:?} seed={seed}");
            assert_eq!(killed.checksum, base.checksum, "{variant:?} raw={raw:?} seed={seed}");
        }
    }
}
