//! Property tests: random fail-stop kill schedules never change the
//! fork-join answer.
//!
//! The bag-of-tasks twin of this file lives in `crates/bot`; here the
//! subjects are the *fork-join* runtimes — child run-to-completion and both
//! continuation-stealing policies (greedy and stalling), the latter two
//! recoverable through the continuation-lineage log and buddy header
//! mirror. For UTS tree expansion and PFor flat loops, a run that loses up
//! to ⌊W/2⌋ workers at arbitrary times — worker 0 (the root holder)
//! explicitly included — must complete with exactly the fault-free answer:
//! lost subtrees are re-executed from their lineage records, join counters
//! are repaired, and a killed root re-elects a new holder. Lost work may
//! only ever show up in elapsed time, never in the result.
//!
//! A second family kills *two* workers inside one lease window — the
//! confirmer of the first death can itself die mid-replay, exercising the
//! record re-keying that makes a second kill recoverable. The contract
//! there: a result-identical completion or a typed abort, never a hang
//! (the bounded `max_steps` turns a hang into a loud panic).

use dcs_apps::pfor::{pfor_program, PforParams};
use dcs_apps::uts::{presets, program, serial_count};
use dcs_core::prelude::*;
use dcs_sim::{DegradeWindow, Detector};
use proptest::prelude::*;

const WORKERS: usize = 6;

/// Registry tuned so detection + replay happen well inside the tiny
/// workloads' makespans (lease ≥ hb, as the parser validates).
fn registry(mut plan: FaultPlan) -> FaultPlan {
    plan.hb_period = VTime::us(10);
    plan.lease = VTime::us(30);
    plan
}

/// Thin a raw (victim, at-µs) list to ≤ ⌊workers/2⌋ distinct victims.
fn kill_plan(raw: &[(usize, u64)], workers: usize) -> FaultPlan {
    let mut plan = FaultPlan::none();
    let mut victims: Vec<usize> = Vec::new();
    for &(v, at_us) in raw {
        let v = v % workers;
        if victims.len() >= workers / 2 && !victims.contains(&v) {
            continue;
        }
        if !victims.contains(&v) {
            victims.push(v);
        }
        plan = plan.with_kill(v, VTime::us(at_us));
    }
    registry(plan)
}

/// Two distinct victims killed `delta_ns` apart — strictly inside one
/// lease window, so the second can catch the first death's confirmer
/// mid-replay.
fn double_kill_plan(v1: usize, v2: usize, t1_us: u64, delta_ns: u64, workers: usize) -> FaultPlan {
    let v1 = v1 % workers;
    let mut v2 = v2 % workers;
    if v2 == v1 {
        v2 = (v1 + 1) % workers;
    }
    let plan = FaultPlan::none()
        .with_kill(v1, VTime::us(t1_us))
        .with_kill(v2, VTime::us(t1_us) + VTime::ns(delta_ns));
    registry(plan)
}

fn cfg(policy: Policy, plan: FaultPlan) -> RunConfig {
    cfg_proto(policy, Protocol::CasLock, plan)
}

fn cfg_proto(policy: Policy, protocol: Protocol, plan: FaultPlan) -> RunConfig {
    let mut cfg = RunConfig::new(WORKERS, policy)
        .with_profile(profiles::test_profile())
        .with_seg_bytes(64 << 20)
        .with_protocol(protocol)
        .with_fault_plan(plan)
        .with_watchdog(true);
    // A hung recovery must fail loudly (engine panic), not wedge the suite.
    cfg.max_steps = 50_000_000;
    cfg
}

/// Armed runs legitimately abandon resources mid-recovery; every other
/// violation (duplicated task, lost task, double free, stall) is a bug.
fn assert_clean_modulo_leaks(r: &RunReport, ctx: &str) {
    if let Some(wd) = &r.watchdog {
        let hard: Vec<_> = wd
            .violations
            .iter()
            .filter(|v| !matches!(v, Violation::Leak { .. }))
            .collect();
        assert!(hard.is_empty(), "{ctx}: {hard:?}");
    }
}

const POLICIES: [Policy; 3] = [Policy::ChildRtc, Policy::ContGreedy, Policy::ContStalling];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// UTS: the result is the tree's node count — any lost or duplicated
    /// subtree shows up as a wrong number.
    #[test]
    fn uts_survives_random_kill_schedules(
        raw in proptest::collection::vec((0usize..8, 1u64..150), 1..4),
    ) {
        let spec = presets::tiny();
        let truth = serial_count(&spec).nodes;
        for policy in POLICIES {
            // Recovery must be steal-protocol-independent: lineage replay
            // dedups against a stale fence-free claim the same way it does
            // against a stale CAS.
            for protocol in Protocol::ALL {
                let r = run(
                    cfg_proto(policy, protocol, kill_plan(&raw, WORKERS)),
                    program(spec.clone()),
                );
                let ctx = format!("{policy:?}/{} raw={raw:?}", protocol.label());
                assert!(r.outcome.is_complete(), "{ctx}: {:?}", r.outcome);
                assert_eq!(r.result.as_u64(), truth, "{ctx}");
                assert_clean_modulo_leaks(&r, &ctx);
            }
        }
    }

    /// PFor returns unit, so the oracle is the watchdog: every iteration's
    /// task dies exactly once (duplication from a stale steal or a botched
    /// replay is caught even though the value cannot show it).
    #[test]
    fn pfor_survives_random_kill_schedules(
        raw in proptest::collection::vec((0usize..8, 1u64..60), 1..4),
    ) {
        let params = PforParams { n: 64, k: 2, m: VTime::us(2) };
        for policy in POLICIES {
            let r = run(cfg(policy, kill_plan(&raw, WORKERS)), pfor_program(params));
            assert!(r.outcome.is_complete(), "{policy:?} raw={raw:?}: {:?}", r.outcome);
            assert_clean_modulo_leaks(&r, &format!("{policy:?} raw={raw:?}"));
        }
    }

    /// Killing worker 0 specifically: the root frame and result slot die
    /// with it; the mirrored root must re-elect instead of aborting.
    #[test]
    fn root_holder_death_reelects(
        at_us in 1u64..120,
    ) {
        let spec = presets::tiny();
        let truth = serial_count(&spec).nodes;
        for policy in POLICIES {
            let plan = registry(FaultPlan::none().with_kill(0, VTime::us(at_us)));
            let r = run(cfg(policy, plan), program(spec.clone()));
            assert!(r.outcome.is_complete(), "{policy:?} kill=0@{at_us}us: {:?}", r.outcome);
            assert_eq!(r.result.as_u64(), truth, "{policy:?} kill=0@{at_us}us");
            assert_clean_modulo_leaks(&r, &format!("{policy:?} kill=0@{at_us}us"));
        }
    }

    /// Multi-steal probe rings under kills: K >= 2 keeps the new abandon
    /// and cancel paths hot (won-but-unused locks released, probes posted
    /// to freshly dead victims dropped un-acted-on) while workers die.
    /// Same contract as the serial path under every protocol family: the
    /// exact fault-free answer, never a hang — the pipelined fabric is the
    /// mode where the whole probe ring is actually in flight at once.
    #[test]
    fn multi_steal_survives_random_kill_schedules(
        raw in proptest::collection::vec((0usize..8, 1u64..150), 1..4),
        k in 2u32..5,
    ) {
        let spec = presets::tiny();
        let truth = serial_count(&spec).nodes;
        for policy in POLICIES {
            for protocol in Protocol::ALL {
                let r = run(
                    cfg_proto(policy, protocol, kill_plan(&raw, WORKERS))
                        .with_fabric(FabricMode::Pipelined)
                        .with_multi_steal(k),
                    program(spec.clone()),
                );
                let ctx = format!("{policy:?}/{} K={k} raw={raw:?}", protocol.label());
                assert!(r.outcome.is_complete(), "{ctx}: {:?}", r.outcome);
                assert_eq!(r.result.as_u64(), truth, "{ctx}");
                assert_clean_modulo_leaks(&r, &ctx);
            }
        }
    }

    /// Suspicion sweep: random degraded-NIC windows, random heartbeat
    /// drops and an aggressive suspect lease under the message detector —
    /// with ZERO real kills. Live workers get falsely evicted mid-steal,
    /// self-fence, and rejoin as fresh incarnations; whatever the windows
    /// do, every run must complete with exactly the fault-free answer
    /// (lost-looking work is replayed, never lost, never duplicated) under
    /// every steal protocol, both fabric modes, and probe rings K ∈ {1,2}.
    #[test]
    fn suspicion_only_runs_complete_with_identical_results(
        windows in proptest::collection::vec(
            // (worker, from-µs, duration-µs, flight-scale factor)
            (0usize..6, 0u64..20, 1u64..40, 2u64..40), 1..3),
        suspect_us in 3u64..8,
        drop_m in 0u32..3,
    ) {
        let spec = presets::tiny();
        let truth = serial_count(&spec).nodes;
        let mut plan = FaultPlan::none().with_detector(Detector::Message);
        plan.hb_period = VTime::us(1);
        plan.suspect = Some(VTime::us(suspect_us));
        plan.msg_drop_p = drop_m as f64 * 0.1;
        for &(w, from_us, dur_us, factor) in &windows {
            plan = plan.with_degrade(DegradeWindow {
                worker: w,
                from: VTime::us(from_us),
                until: VTime::us(from_us + dur_us),
                factor: factor as f64,
            });
        }
        for protocol in Protocol::ALL {
            for fabric in [FabricMode::Blocking, FabricMode::Pipelined] {
                for k in [1u32, 2] {
                    let r = run(
                        cfg_proto(Policy::ContGreedy, protocol, plan.clone())
                            .with_fabric(fabric)
                            .with_multi_steal(k),
                        program(spec.clone()),
                    );
                    let ctx = format!(
                        "{}/{fabric:?}/K={k} windows={windows:?} suspect={suspect_us}us",
                        protocol.label()
                    );
                    assert!(r.outcome.is_complete(), "{ctx}: {:?}", r.outcome);
                    assert_eq!(r.result.as_u64(), truth, "{ctx}");
                    assert_eq!(r.stats.workers_lost, 0, "{ctx}: kill=none lost a worker");
                    assert_eq!(
                        r.stats.rejoins, r.stats.false_suspects,
                        "{ctx}: every evicted-live worker rejoins"
                    );
                    assert_clean_modulo_leaks(&r, &ctx);
                }
            }
        }
    }

    /// Two workers down inside one lease window. Either the lineage log
    /// converges to the exact answer, or the run aborts with a typed
    /// reason — it must never hang or return a wrong result.
    #[test]
    fn double_kill_inside_one_lease_window(
        v1 in 0usize..6,
        v2 in 0usize..6,
        t1_us in 1u64..100,
        delta_ns in 0u64..30_000,
    ) {
        let spec = presets::tiny();
        let truth = serial_count(&spec).nodes;
        for policy in POLICIES {
            let plan = double_kill_plan(v1, v2, t1_us, delta_ns, WORKERS);
            let r = run(cfg(policy, plan.clone()), program(spec.clone()));
            match r.outcome {
                RunOutcome::Complete => {
                    assert_eq!(
                        r.result.as_u64(),
                        truth,
                        "{policy:?} plan={plan}: completed with the wrong answer"
                    );
                    assert_clean_modulo_leaks(&r, &format!("{policy:?} plan={plan}"));
                }
                RunOutcome::Unrecoverable { worker, ref reason, .. } => {
                    // Typed abort: the named worker must actually be one of
                    // the victims.
                    assert!(
                        plan.kill.iter().any(|k| k.worker == worker),
                        "{policy:?} plan={plan}: abort blamed unkilled worker {worker} ({reason})"
                    );
                }
            }
        }
    }
}

