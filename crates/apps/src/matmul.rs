//! Cache-oblivious matrix multiplication — a compute-dense fork-join
//! workload.
//!
//! Recursively splits `C += A·B` into eight sub-products; the four
//! quadrant pairs writing disjoint parts of `C` run in parallel, the two
//! halves of each pair run sequentially (the classic dependence-safe
//! parallelization). Leaf blocks run the real kernel as charged host work
//! over inputs generated deterministically from the seed, so results are
//! verified against a naive host multiply.
//!
//! Complements the benchmark suite: UTS is spawn-dense with trivial
//! compute, LCS is dependency-dense, mergesort is data-movement-dense —
//! matmul is compute-dense with a wide, regular task tree (span
//! `O(log² n)`), the regime where all policies should do well and overheads
//! show up only at the margin.

use std::sync::Arc;

use dcs_core::prelude::*;
use dcs_core::HostWork;
use dcs_sim::SimRng;

/// Matrices are flattened row-major `u32` with wrapping arithmetic (exact
/// equality checks without float noise).
#[derive(Clone, Debug)]
pub struct MatParams {
    pub n: usize,
    /// Leaf block size (paper-style granularity control).
    pub cutoff: usize,
    pub a: Arc<[u32]>,
    pub b: Arc<[u32]>,
    /// Virtual time per leaf multiply-accumulate.
    pub per_flop: VTime,
}

impl MatParams {
    pub fn random(n: usize, cutoff: usize, seed: u64) -> MatParams {
        assert!(n.is_power_of_two() && cutoff.is_power_of_two() && cutoff <= n);
        let mut rng = SimRng::new(seed);
        let gen = |rng: &mut SimRng| -> Arc<[u32]> {
            (0..n * n).map(|_| rng.next_u64() as u32 & 0xFF).collect()
        };
        MatParams {
            n,
            cutoff,
            a: gen(&mut rng),
            b: gen(&mut rng),
            per_flop: VTime::ns(1),
        }
    }

    /// `T1 ≈ per_flop · n³` (machine-scaled by callers via `ctx.scaled`).
    pub fn t1(&self, compute_scale: f64) -> VTime {
        (self.per_flop * (self.n as u64).pow(3)).scale(compute_scale)
    }
}

/// Naive host-side reference multiply.
pub fn reference(a: &[u32], b: &[u32], n: usize) -> Vec<u32> {
    let mut c = vec![0u32; n * n];
    for i in 0..n {
        for k in 0..n {
            let av = a[i * n + k];
            for j in 0..n {
                c[i * n + j] = c[i * n + j].wrapping_add(av.wrapping_mul(b[k * n + j]));
            }
        }
    }
    c
}

/// A sub-problem: compute the product of `A[ai..ai+s, ak..ak+s]` and
/// `B[ak..ak+s, bj..bj+s]`, returning the `s × s` result block.
#[derive(Clone, Copy, Debug)]
struct Prob {
    ai: usize,
    ak: usize,
    bj: usize,
    s: usize,
}

impl Prob {
    fn pack(&self) -> Value {
        Value::pair(
            Value::pair((self.ai as u64).into(), (self.ak as u64).into()),
            Value::pair((self.bj as u64).into(), (self.s as u64).into()),
        )
    }

    fn unpack(v: &Value) -> Prob {
        let Value::Pair(a, b) = v else { panic!("bad prob") };
        let Value::Pair(ai, ak) = a.as_ref() else { panic!("bad prob") };
        let Value::Pair(bj, s) = b.as_ref() else { panic!("bad prob") };
        Prob {
            ai: ai.as_u64() as usize,
            ak: ak.as_u64() as usize,
            bj: bj.as_u64() as usize,
            s: s.as_u64() as usize,
        }
    }
}

fn add_blocks(x: &[u32], y: &[u32]) -> Arc<[u32]> {
    x.iter().zip(y).map(|(&a, &b)| a.wrapping_add(b)).collect()
}

/// Task: compute one sub-product block.
///
/// Internal nodes split the k-dimension: `C = A₁·B₁ + A₂·B₂`, with each
/// half itself split over the (i, j) quadrants via four parallel tasks.
fn mm_task(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let p = Prob::unpack(&arg);
    let mp = ctx.app::<MatParams>();
    if p.s <= mp.cutoff {
        // Leaf: real kernel, charged s³ flops.
        let dur = ctx.scaled(mp.per_flop * (p.s as u64).pow(3));
        let work: HostWork = Box::new(move |ctx: &mut TaskCtx| {
            let mp = ctx.app::<MatParams>();
            let n = mp.n;
            let s = p.s;
            let mut c = vec![0u32; s * s];
            for i in 0..s {
                for k in 0..s {
                    let av = mp.a[(p.ai + i) * n + p.ak + k];
                    for j in 0..s {
                        c[i * s + j] = c[i * s + j]
                            .wrapping_add(av.wrapping_mul(mp.b[(p.ak + k) * n + p.bj + j]));
                    }
                }
            }
            Value::U32s(c.into())
        });
        return Effect::compute_with(dur, work, frame(|v, _| Effect::Return(v)));
    }
    // Split: four disjoint output quadrants in parallel; each quadrant sums
    // two k-halves sequentially.
    let h = p.s / 2;
    let quads: [Prob; 4] = [
        Prob { ai: p.ai, ak: p.ak, bj: p.bj, s: h },
        Prob { ai: p.ai, ak: p.ak, bj: p.bj + h, s: h },
        Prob { ai: p.ai + h, ak: p.ak, bj: p.bj, s: h },
        Prob { ai: p.ai + h, ak: p.ak, bj: p.bj + h, s: h },
    ];
    spawn_quads(p, quads, 0, Vec::new())
}

/// One output quadrant = sequential sum of two recursive sub-products.
fn quad_task(arg: Value, _ctx: &mut TaskCtx) -> Effect {
    let p = Prob::unpack(&arg);
    let second = Prob {
        ak: p.ak + p.s,
        ..p
    };
    Effect::call(
        mm_task,
        p.pack(),
        frame(move |first, _| {
            let first = Arc::clone(first.as_u32s());
            Effect::call(
                mm_task,
                second.pack(),
                frame(move |snd, _| {
                    Effect::ret(Value::U32s(add_blocks(&first, snd.as_u32s())))
                }),
            )
        }),
    )
}

fn spawn_quads(parent: Prob, quads: [Prob; 4], i: usize, handles: Vec<ThreadHandle>) -> Effect {
    // The quadrant problems at size h each sum halves (k and k+h); encode
    // the quadrant with its own half-k origin and let quad_task do the sum.
    let q = quads[i];
    if i == 3 {
        return Effect::call(
            quad_task,
            q.pack(),
            frame(move |last, _| {
                join_quads(parent, quads, handles, 0, vec![None, None, None, Some(Arc::clone(last.as_u32s()))])
            }),
        );
    }
    Effect::fork(
        quad_task,
        q.pack(),
        frame(move |h, _| {
            let mut handles = handles;
            handles.push(h.as_handle());
            spawn_quads(parent, quads, i + 1, handles)
        }),
    )
}

fn join_quads(
    parent: Prob,
    quads: [Prob; 4],
    handles: Vec<ThreadHandle>,
    i: usize,
    mut acc: Vec<Option<Arc<[u32]>>>,
) -> Effect {
    if i == handles.len() {
        // Assemble the four quadrant blocks into the parent block.
        let h = parent.s / 2;
        let mut out = vec![0u32; parent.s * parent.s];
        for (qi, q) in quads.iter().enumerate() {
            let block = acc[qi].take().expect("quadrant present");
            let (row0, col0) = (q.ai - parent.ai, q.bj - parent.bj);
            debug_assert_eq!(block.len(), h * h);
            for r in 0..h {
                let dst = (row0 + r) * parent.s + col0;
                out[dst..dst + h].copy_from_slice(&block[r * h..(r + 1) * h]);
            }
        }
        return Effect::ret(Value::U32s(out.into()));
    }
    let hnd = handles[i];
    Effect::join(
        hnd,
        frame(move |v, _| {
            let mut acc = acc;
            acc[i] = Some(Arc::clone(v.as_u32s()));
            join_quads(parent, quads, handles, i + 1, acc)
        }),
    )
}

/// Build the matmul program.
pub fn program(params: MatParams) -> Program {
    let root = Prob {
        ai: 0,
        ak: 0,
        bj: 0,
        s: params.n,
    };
    // The root problem must sum both k-halves, which quad_task does.
    Program::new(quad_task_root, root.pack()).with_app(params)
}

/// Root wrapper: a full multiply is one "quadrant" covering the whole
/// matrix when n == s (the k-split happens inside quad_task); at the root
/// the k-origin is 0 and the second half starts at s — but a root of size
/// n only has one k-half of size n. Run the plain task tree instead.
fn quad_task_root(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let p = Prob::unpack(&arg);
    if p.s <= ctx.app::<MatParams>().cutoff {
        return mm_task(arg, ctx);
    }
    // C = A[*, 0..h]·B[0..h, *] + A[*, h..n]·B[h..n, *], via quad_task
    // applied to a half-size k but full-size (i, j)? Simpler: reuse the
    // standard decomposition by treating the root as one problem whose
    // k-extent equals s: split (i, j) quadrants here, each quadrant sums
    // its two k-halves.
    let h = p.s / 2;
    let quads: [Prob; 4] = [
        Prob { ai: 0, ak: 0, bj: 0, s: h },
        Prob { ai: 0, ak: 0, bj: h, s: h },
        Prob { ai: h, ak: 0, bj: 0, s: h },
        Prob { ai: h, ak: 0, bj: h, s: h },
    ];
    spawn_quads(p, quads, 0, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::policy::Policy;

    fn check(policy: Policy, workers: usize, n: usize, cutoff: usize) {
        let params = MatParams::random(n, cutoff, 11);
        let expect = reference(&params.a, &params.b, n);
        let cfg = RunConfig::new(workers, policy)
            .with_profile(profiles::test_profile())
            .with_seg_bytes(64 << 20);
        let r = dcs_core::run(cfg, program(params));
        assert_eq!(
            r.result.as_u32s().as_ref(),
            expect.as_slice(),
            "{policy:?} P={workers} n={n}"
        );
    }

    #[test]
    fn reference_identity() {
        // I · B = B for the 2x2 identity.
        let a = vec![1, 0, 0, 1];
        let b = vec![5, 6, 7, 8];
        assert_eq!(reference(&a, &b, 2), b);
    }

    #[test]
    fn matches_reference_all_policies() {
        for policy in Policy::ALL {
            check(policy, 4, 16, 4);
        }
    }

    #[test]
    fn matches_reference_various_shapes() {
        check(Policy::ContGreedy, 1, 8, 8); // single leaf
        check(Policy::ContGreedy, 2, 16, 8);
        check(Policy::ContGreedy, 8, 32, 4); // deep recursion
    }

    #[test]
    fn t1_is_cubic() {
        let small = MatParams::random(16, 4, 1);
        let big = MatParams::random(32, 4, 1);
        assert_eq!(big.t1(1.0), small.t1(1.0) * 8);
    }

    #[test]
    fn scales_with_workers_on_a_fast_fabric() {
        // Under the negligible-latency test profile the task tree scales;
        // under real profiles value-passing matmul is communication-bound
        // (every level moves O(n²) block data through entries) — which is
        // precisely the class of application §VII says needs a global heap.
        let params = MatParams::random(64, 8, 3);
        let t = |p| {
            let cfg = RunConfig::new(p, Policy::ContGreedy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20);
            dcs_core::run(cfg, program(params.clone())).elapsed
        };
        let t1 = t(1);
        let t8 = t(8);
        let speedup = t1.as_ns() as f64 / t8.as_ns() as f64;
        assert!(speedup > 3.0, "matmul speedup {speedup:.1} too low");
    }

    #[test]
    fn communication_bound_under_real_latencies() {
        // The §VII observation, quantified: on ITO-A latencies the bytes
        // moved through entries rival the compute, capping speedup.
        let params = MatParams::random(32, 8, 3);
        let cfg = RunConfig::new(8, Policy::ContGreedy).with_seg_bytes(64 << 20);
        let r = dcs_core::run(cfg, program(params.clone()));
        let expect = reference(&params.a, &params.b, 32);
        assert_eq!(r.result.as_u32s().as_ref(), expect.as_slice());
        assert!(
            r.fabric.bytes_got + r.fabric.bytes_put > (32 * 32 * 4) as u64,
            "block traffic should exceed one matrix"
        );
    }
}
