//! PFor and RecPFor — the synthetic benchmarks of §IV-C (Fig. 5).
//!
//! *PFor*: `K` consecutive parallel loops over `N` iterations, each
//! iteration computing for `M` microseconds; each loop is a recursive
//! binary fork-join (as `cilk_for` lowers). Total work `T1 = K·M·N`.
//!
//! *RecPFor*: recursive binary task tree; each recursion level runs
//! `PFor(n)` and then forks `RecPFor(n/2)` twice — the
//! quicksort/decision-tree pattern. Total work
//! `T1 = K·M·N·log₂N + M·N` (the trailing term is the `n = 1` leaves).
//!
//! The paper fixes `K = 5`, `M = 10 µs` and sweeps `N` (Fig. 6). `compute(M)`
//! runs a calibrated number of FMA operations in the original; here it is a
//! pure virtual-time charge scaled by the machine's compute factor.

use std::sync::Arc;

use dcs_core::prelude::*;

/// Workload parameters shared by PFor and RecPFor.
#[derive(Clone, Copy, Debug)]
pub struct PforParams {
    /// Problem size (iterations per parallel loop at the root).
    pub n: u64,
    /// Consecutive parallel loops per PFor call.
    pub k: u32,
    /// Leaf compute duration (nominal, ITO-A scale).
    pub m: VTime,
}

impl PforParams {
    /// The paper's configuration: K = 5, M = 10 µs.
    pub fn paper(n: u64) -> PforParams {
        PforParams {
            n,
            k: 5,
            m: VTime::us(10),
        }
    }

    /// Total work of the PFor benchmark, scaled for a machine.
    pub fn pfor_t1(&self, compute_scale: f64) -> VTime {
        (self.m * self.k as u64 * self.n).scale(compute_scale)
    }

    /// Total work of the RecPFor benchmark (`K·M·N·log₂N + M·N`).
    pub fn recpfor_t1(&self, compute_scale: f64) -> VTime {
        let log2n = self.n.ilog2() as u64;
        (self.m * self.k as u64 * self.n * log2n + self.m * self.n).scale(compute_scale)
    }
}

fn range_value(lo: u64, hi: u64) -> Value {
    Value::pair(lo.into(), hi.into())
}

/// One parallel loop over `[lo, hi)` as a recursive binary fork-join.
fn par_range(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let (lo, hi) = arg.into_pair();
    let (lo, hi) = (lo.as_u64(), hi.as_u64());
    debug_assert!(lo < hi);
    if hi - lo == 1 {
        let app = ctx.app::<PforParams>();
        let dur = ctx.scaled(app.m);
        return Effect::compute(dur, ret_frame(Value::Unit));
    }
    let mid = lo + (hi - lo) / 2;
    Effect::fork(
        par_range,
        range_value(lo, mid),
        frame(move |h, _| {
            let h = h.as_handle();
            Effect::call(
                par_range,
                range_value(mid, hi),
                frame(move |_, _| Effect::join(h, ret_frame(Value::Unit))),
            )
        }),
    )
}

/// `PFor(n)`: run `K` consecutive parallel loops of `n` iterations.
/// Argument: `Pair(n, k_remaining)`.
fn pfor_loops(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let (n, k) = arg.into_pair();
    let (n, k) = (n.as_u64(), k.as_u64());
    if k == 0 {
        return Effect::ret(Value::Unit);
    }
    let _ = ctx;
    Effect::call(
        par_range,
        range_value(0, n),
        frame(move |_, _| Effect::call(pfor_loops, Value::pair(n.into(), (k - 1).into()), ret_frame(Value::Unit))),
    )
}

/// PFor root task: argument is `n`.
pub fn pfor_root(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let n = arg.as_u64();
    let k = ctx.app::<PforParams>().k as u64;
    Effect::call(pfor_loops, Value::pair(n.into(), k.into()), ret_frame(Value::Unit))
}

/// RecPFor: `PFor(n)`, then fork/call the two halves (Fig. 5 right).
pub fn recpfor(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let n = arg.as_u64();
    if n == 1 {
        let app = ctx.app::<PforParams>();
        let dur = ctx.scaled(app.m);
        return Effect::compute(dur, ret_frame(Value::Unit));
    }
    let k = ctx.app::<PforParams>().k as u64;
    Effect::call(
        pfor_loops,
        Value::pair(n.into(), k.into()),
        frame(move |_, _| {
            Effect::fork(
                recpfor,
                n / 2,
                frame(move |h, _| {
                    let h = h.as_handle();
                    Effect::call(
                        recpfor,
                        n / 2,
                        frame(move |_, _| Effect::join(h, ret_frame(Value::Unit))),
                    )
                }),
            )
        }),
    )
}

/// Build the PFor program (`n` must be a power of two for clean math).
pub fn pfor_program(params: PforParams) -> Program {
    assert!(params.n.is_power_of_two());
    Program {
        root: pfor_root,
        arg: Value::U64(params.n),
        app: Arc::new(params),
        init: None,
    }
}

/// Build the RecPFor program.
pub fn recpfor_program(params: PforParams) -> Program {
    assert!(params.n.is_power_of_two());
    Program {
        root: recpfor,
        arg: Value::U64(params.n),
        app: Arc::new(params),
        init: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::policy::Policy;

    fn quick(n: u64) -> PforParams {
        PforParams {
            n,
            k: 2,
            m: VTime::us(2),
        }
    }

    #[test]
    fn t1_formulas() {
        let p = PforParams::paper(1024);
        assert_eq!(p.pfor_t1(1.0), VTime::us(5 * 10 * 1024));
        assert_eq!(
            p.recpfor_t1(1.0),
            VTime::us(5 * 10 * 1024 * 10 + 10 * 1024)
        );
        assert_eq!(p.pfor_t1(2.0), p.pfor_t1(1.0) * 2);
    }

    #[test]
    fn pfor_runs_all_policies() {
        for policy in Policy::ALL {
            let cfg = RunConfig::new(4, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20);
            let r = dcs_core::run(cfg, pfor_program(quick(32)));
            assert_eq!(r.result, Value::Unit, "{policy:?}");
            // K loops × (N-1) forks each.
            assert_eq!(r.threads, 1 + 2 * 31, "{policy:?}");
        }
    }

    #[test]
    fn recpfor_runs_all_policies() {
        for policy in Policy::ALL {
            let cfg = RunConfig::new(4, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20);
            let r = dcs_core::run(cfg, recpfor_program(quick(16)));
            assert_eq!(r.result, Value::Unit, "{policy:?}");
        }
    }

    #[test]
    fn single_worker_time_approaches_t1() {
        // With 1 worker and negligible op costs, elapsed ≈ T1: validates the
        // work accounting end to end.
        let params = quick(64);
        let cfg = RunConfig::new(1, Policy::ContGreedy)
            .with_profile(profiles::test_profile())
            .with_seg_bytes(64 << 20);
        let r = dcs_core::run(cfg, pfor_program(params));
        let t1 = params.pfor_t1(1.0);
        let ratio = r.elapsed.as_ns() as f64 / t1.as_ns() as f64;
        assert!(
            (1.0..1.1).contains(&ratio),
            "elapsed {} vs T1 {} (ratio {ratio})",
            r.elapsed,
            t1
        );
    }

    #[test]
    fn compute_scale_slows_leaves() {
        let params = quick(16);
        let mut prof = profiles::test_profile();
        prof.compute_scale = 3.0;
        let base = dcs_core::run(
            RunConfig::new(1, Policy::ContGreedy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20),
            pfor_program(params),
        );
        let slow = dcs_core::run(
            RunConfig::new(1, Policy::ContGreedy)
                .with_profile(prof)
                .with_seg_bytes(64 << 20),
            pfor_program(params),
        );
        let ratio = slow.elapsed.as_ns() as f64 / base.elapsed.as_ns() as f64;
        assert!(
            (2.5..3.2).contains(&ratio),
            "compute scale not applied: ratio {ratio}"
        );
    }
}
