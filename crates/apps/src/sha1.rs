//! SHA-1, implemented from the FIPS 180-1 specification.
//!
//! UTS (§V-C) generates its unbalanced tree on the fly with SHA-1 as the
//! splittable random stream: each tree node owns a 20-byte digest, and child
//! `i`'s digest is `SHA1(parent_digest ‖ i)`. The hash quality is what makes
//! the tree both deterministic and statistically well-behaved, so we
//! implement the real function rather than substituting a toy mixer.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 20;

/// A SHA-1 digest.
pub type Digest = [u8; DIGEST_LEN];

const H0: [u32; 5] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];

/// Compress one 64-byte block into the state.
fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let [mut a, mut b, mut c, mut d, mut e] = *state;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | (!b & d), 0x5A82_7999),
            20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
            _ => (b ^ c ^ d, 0xCA62_C1D6),
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

/// SHA-1 of an arbitrary message.
pub fn sha1(msg: &[u8]) -> Digest {
    let mut state = H0;
    let mut chunks = msg.chunks_exact(64);
    for block in &mut chunks {
        compress(&mut state, block.try_into().expect("exact chunk"));
    }
    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let rem = chunks.remainder();
    let bitlen = (msg.len() as u64) * 8;
    let mut last = [0u8; 128];
    last[..rem.len()].copy_from_slice(rem);
    last[rem.len()] = 0x80;
    let blocks = if rem.len() + 9 <= 64 { 1 } else { 2 };
    last[blocks * 64 - 8..blocks * 64].copy_from_slice(&bitlen.to_be_bytes());
    for i in 0..blocks {
        compress(&mut state, last[i * 64..(i + 1) * 64].try_into().expect("64"));
    }
    let mut out = [0u8; DIGEST_LEN];
    for (i, s) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
    }
    out
}

/// The UTS child-derivation hash: `SHA1(parent ‖ child_index_be32)`, exactly
/// one compression (24-byte message).
pub fn sha1_child(parent: &Digest, index: u32) -> Digest {
    let mut msg = [0u8; 24];
    msg[..20].copy_from_slice(parent);
    msg[20..].copy_from_slice(&index.to_be_bytes());
    sha1(&msg)
}

/// Interpret the first 8 digest bytes as a uniform value in `[0, 1)`.
pub fn digest_to_unit(d: &Digest) -> f64 {
    let x = u64::from_be_bytes(d[..8].try_into().expect("8 bytes"));
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hex(&sha1(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex(&sha1(&[0x61u8; 1_000_000])),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn padding_boundaries() {
        // 55, 56 and 64 bytes exercise the 1-vs-2 padding block cases.
        for len in [55usize, 56, 63, 64, 65, 119, 120] {
            let msg = vec![0x5au8; len];
            let d = sha1(&msg);
            // Self-consistency: same input, same output; different length,
            // different output.
            assert_eq!(d, sha1(&msg));
            assert_ne!(d, sha1(&vec![0x5au8; len + 1]));
        }
    }

    #[test]
    fn child_derivation_differs_by_index() {
        let root = sha1(b"root");
        let c0 = sha1_child(&root, 0);
        let c1 = sha1_child(&root, 1);
        assert_ne!(c0, c1);
        // Deterministic.
        assert_eq!(c0, sha1_child(&root, 0));
    }

    #[test]
    fn unit_conversion_in_range_and_uniformish() {
        let mut d = sha1(b"seed");
        let mut sum = 0.0;
        for _ in 0..2000 {
            let u = digest_to_unit(&d);
            assert!((0.0..1.0).contains(&u));
            sum += u;
            d = sha1_child(&d, 7);
        }
        let mean = sum / 2000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }
}
