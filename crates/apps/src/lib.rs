//! # dcs-apps — the paper's benchmark applications
//!
//! * [`pfor`] — PFor and RecPFor synthetic benchmarks (§IV-C, Fig. 5/6,
//!   Table II, Fig. 7),
//! * [`uts`] — Unbalanced Tree Search with SHA-1 tree generation (§V-C,
//!   Fig. 8/9), fork-join parallelization,
//! * [`lcs`] — longest common subsequence via recursive decomposition and
//!   multi-consumer futures (§V-D, Fig. 10–12, Table III),
//! * [`sha1`] — the SHA-1 substrate UTS relies on,
//! * [`nqueens`] — irregular backtracking search (extra workload),
//! * [`msort`] — parallel mergesort whose data flows through task values
//!   (extra workload).

pub mod lcs;
pub mod matmul;
pub mod msort;
pub mod nqueens;
pub mod pfor;
pub mod sha1;
pub mod uts;
