//! LCS — longest common subsequence via recursive decomposition and futures
//! (§V-D, Fig. 10/11).
//!
//! The DP recurrence has a *wavefront* dependency pattern; strict fork-join
//! decomposition would stretch the critical path from `O(n)` to
//! `O(n^{log₂3})`. Following Chowdhury & Ramachandran's decomposition, each
//! block of the 2-D table is a **future** whose value is either
//!
//! * (leaf, `n ≤ C`) its output boundaries — `(bot, rgt)`, the bottom row and
//!   right column including the pass-through corners — or
//! * (internal) the triple of child futures `(X01, X10, X11)`, which
//!   consumers navigate recursively (Fig. 11 line 60).
//!
//! Geometry (block origin `(i, j)`, size `n`, covering DP cells
//! `(i+1..=i+n) × (j+1..=j+n)`):
//!
//! ```text
//!        T (block above)
//!      ┌───────┬───────┐
//!   L  │  X00  →  X01  │      X00 inputs: T.X10 (top), L.X01 (left)
//!      │   ↓  ↘   ↓    │      X01 inputs: T.X11, X00
//!      │  X10  →  X11  │      X10 inputs: X00, L.X11
//!      └───────┴───────┘      X11 inputs: X01, X10
//! ```
//!
//! Every future's **consumer count is fixed at spawn** (§V-D): `X00` has
//! exactly 3 consumers (X01, X10, and the parent's throttling join of
//! Fig. 11 line 65); the others have one consumer per existing neighbour
//! plus, for the global bottom-right corner chain, the root navigator that
//! extracts the final length.

use std::sync::Arc;

use dcs_core::prelude::*;
use dcs_core::HostWork;
use dcs_sim::SimRng;

/// Workload parameters and input sequences.
#[derive(Clone, Debug)]
pub struct LcsParams {
    /// Problem size (sequence length); power of two.
    pub n: u64,
    /// Leaf block size `C` (paper: 512); power of two, ≤ n.
    pub c: u64,
    /// Virtual time of one `C×C` leaf kernel at ITO-A scale.
    pub tc: VTime,
    pub a: Arc<[u8]>,
    pub b: Arc<[u8]>,
}

impl LcsParams {
    /// Paper-calibrated leaf time: 0.340 ms for C = 512 on ITO-A, scaled
    /// quadratically with the block size.
    pub fn tc_for(c: u64) -> VTime {
        VTime::ns((340_000.0 * (c as f64 / 512.0).powi(2)) as u64)
    }

    /// Random 1-byte-character sequences (the paper's input).
    pub fn random(n: u64, c: u64, seed: u64) -> LcsParams {
        assert!(n.is_power_of_two() && c.is_power_of_two() && c <= n);
        let mut rng = SimRng::new(seed);
        let gen = |rng: &mut SimRng| -> Arc<[u8]> {
            (0..n).map(|_| rng.next_u64() as u8).collect()
        };
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        LcsParams {
            n,
            c,
            tc: Self::tc_for(c),
            a,
            b,
        }
    }

    /// Restrict the alphabet (higher match density stresses the diagonal
    /// path; used by tests).
    pub fn random_alpha(n: u64, c: u64, seed: u64, alphabet: u8) -> LcsParams {
        let mut p = LcsParams::random(n, c, seed);
        let shrink = |s: &Arc<[u8]>| -> Arc<[u8]> {
            s.iter().map(|&x| x % alphabet).collect()
        };
        p.a = shrink(&p.a);
        p.b = shrink(&p.b);
        p
    }

    /// Total work `T1 = (N/C)² · Tc` (paper §V-D), machine-scaled.
    pub fn t1(&self, compute_scale: f64) -> VTime {
        let blocks = (self.n / self.c) * (self.n / self.c);
        (self.tc * blocks).scale(compute_scale)
    }

    /// Span `T∞ = (2N/C − 1) · Tc`, machine-scaled.
    pub fn t_inf(&self, compute_scale: f64) -> VTime {
        (self.tc * (2 * self.n / self.c - 1)).scale(compute_scale)
    }
}

// ---------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------

/// O(N²) time, O(N) space reference DP (ground truth for tests).
pub fn lcs_reference(a: &[u8], b: &[u8]) -> u32 {
    let mut row = vec![0u32; b.len() + 1];
    for &ac in a {
        let mut diag = 0;
        for (j, &bc) in b.iter().enumerate() {
            let up = row[j + 1];
            row[j + 1] = if ac == bc {
                diag + 1
            } else {
                up.max(row[j])
            };
            diag = up;
        }
    }
    row[b.len()]
}

// ---------------------------------------------------------------------
// Leaf kernel
// ---------------------------------------------------------------------

/// Compute one block given its input boundaries.
///
/// * `top[c] = X(i, j+c)` for `c = 0..=n` (corner included),
/// * `left[r] = X(i+r, j)` for `r = 0..=n`,
/// * returns `bot[c] = X(i+n, j+c)` and `rgt[r] = X(i+r, j+n)` — both with
///   their pass-through corner elements (`bot[0] = left[n]`,
///   `rgt[0] = top[n]`).
pub fn leaf_kernel(a: &[u8], b: &[u8], i: usize, j: usize, n: usize, top: &[u32], left: &[u32]) -> (Vec<u32>, Vec<u32>) {
    debug_assert_eq!(top.len(), n + 1);
    debug_assert_eq!(left.len(), n + 1);
    debug_assert_eq!(top[0], left[0], "corner must agree");
    let mut row = top.to_vec();
    let mut rgt = Vec::with_capacity(n + 1);
    rgt.push(top[n]);
    for r in 1..=n {
        let mut diag = row[0];
        row[0] = left[r];
        let ac = a[i + r - 1];
        for c in 1..=n {
            let up = row[c];
            row[c] = if ac == b[j + c - 1] {
                diag + 1
            } else {
                up.max(row[c - 1])
            };
            diag = up;
        }
        rgt.push(row[n]);
    }
    (row, rgt)
}

// ---------------------------------------------------------------------
// Future-based block decomposition
// ---------------------------------------------------------------------

/// A block descriptor travelling as a task argument. `t`/`l` are the
/// top/left neighbour futures (`None` = matrix edge, zero boundary).
#[derive(Clone, Copy, Debug)]
struct Blk {
    i: u64,
    j: u64,
    n: u64,
    t: Option<ThreadHandle>,
    l: Option<ThreadHandle>,
}

fn bnd_value(h: Option<ThreadHandle>) -> Value {
    match h {
        None => Value::U64(0),
        Some(h) => Value::Handle(h),
    }
}

fn bnd_from(v: &Value) -> Option<ThreadHandle> {
    match v {
        Value::U64(0) => None,
        Value::Handle(h) => Some(*h),
        other => panic!("bad boundary encoding: {other:?}"),
    }
}

impl Blk {
    fn pack(&self) -> Value {
        Value::pair(
            Value::pair(self.i.into(), self.j.into()),
            Value::pair(
                self.n.into(),
                Value::pair(bnd_value(self.t), bnd_value(self.l)),
            ),
        )
    }

    fn unpack(v: &Value) -> Blk {
        let Value::Pair(ij, rest) = v else {
            panic!("bad block encoding")
        };
        let Value::Pair(i, j) = ij.as_ref() else {
            panic!("bad block encoding")
        };
        let Value::Pair(n, tl) = rest.as_ref() else {
            panic!("bad block encoding")
        };
        let Value::Pair(t, l) = tl.as_ref() else {
            panic!("bad block encoding")
        };
        Blk {
            i: i.as_u64(),
            j: j.as_u64(),
            n: n.as_u64(),
            t: bnd_from(t),
            l: bnd_from(l),
        }
    }
}

/// Task body of one block: join the T and L futures (if any), then either
/// run the leaf kernel or spawn the four children.
fn lcs_block(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let blk = Blk::unpack(&arg);
    match blk.t {
        None => got_t(blk, None, ctx),
        Some(h) => Effect::join(h, frame(move |tv, ctx| got_t(blk, Some(tv), ctx))),
    }
}

fn got_t(blk: Blk, tv: Option<Value>, ctx: &mut TaskCtx) -> Effect {
    match blk.l {
        None => dispatch(blk, tv, None, ctx),
        Some(h) => Effect::join(h, frame(move |lv, ctx| dispatch(blk, tv, Some(lv), ctx))),
    }
}

fn dispatch(blk: Blk, tv: Option<Value>, lv: Option<Value>, ctx: &mut TaskCtx) -> Effect {
    let params = ctx.app::<LcsParams>();
    if blk.n <= params.c {
        leaf(blk, tv, lv, ctx)
    } else {
        internal(blk, tv, lv, params.n)
    }
}

fn zeros(n: usize) -> Arc<[u32]> {
    vec![0u32; n + 1].into()
}

/// Leaf: extract `(t, _)` from T and `(_, l)` from L (Fig. 11 line 56), run
/// the kernel as charged host work, return `(bot, rgt)`.
fn leaf(blk: Blk, tv: Option<Value>, lv: Option<Value>, ctx: &mut TaskCtx) -> Effect {
    let params = ctx.app::<LcsParams>();
    let n = blk.n as usize;
    debug_assert_eq!(blk.n, params.c, "leaves are exactly C-sized");
    let top = match tv {
        None => zeros(n),
        Some(v) => {
            let (bot, _) = v.into_pair();
            Arc::clone(bot.as_u32s())
        }
    };
    let left = match lv {
        None => zeros(n),
        Some(v) => {
            let (_, rgt) = v.into_pair();
            Arc::clone(rgt.as_u32s())
        }
    };
    let dur = ctx.scaled(params.tc);
    let (i, j) = (blk.i as usize, blk.j as usize);
    let work: HostWork = Box::new(move |ctx: &mut TaskCtx| {
        let params = ctx.app::<LcsParams>();
        let (bot, rgt) = leaf_kernel(&params.a, &params.b, i, j, n, &top, &left);
        Value::pair(Value::U32s(bot.into()), Value::U32s(rgt.into()))
    });
    Effect::compute_with(dur, work, frame(|v, _| Effect::Return(v)))
}

/// Consumer count of each child future (see module docs).
fn child_consumers(blk: &Blk, big_n: u64) -> (u32, u32, u32) {
    let below = (blk.i + blk.n < big_n) as u32;
    let right = (blk.j + blk.n < big_n) as u32;
    let corner = (below == 0 && right == 0) as u32;
    let c01 = 1 + right;
    let c10 = 1 + below;
    let c11 = below + right + corner;
    (c01, c10, c11)
}

/// Internal block: extract the child futures of T and L, spawn the four
/// children in wavefront order, throttle on X00, return the triple.
fn internal(blk: Blk, tv: Option<Value>, lv: Option<Value>, big_n: u64) -> Effect {
    let h = blk.n / 2;
    // (_, T10, T11) ← T.join(); (L01, _, L11) ← L.join()  (Fig. 11 l. 60)
    let (t10, t11) = match tv {
        None => (None, None),
        Some(v) => {
            let hs = v.as_handles3();
            (Some(hs[1]), Some(hs[2]))
        }
    };
    let (l01, l11) = match lv {
        None => (None, None),
        Some(v) => {
            let hs = v.as_handles3();
            (Some(hs[0]), Some(hs[2]))
        }
    };
    let (c01, c10, c11) = child_consumers(&blk, big_n);
    let (i, j) = (blk.i, blk.j);
    let b00 = Blk { i, j, n: h, t: t10, l: l01 };
    Effect::fork_future(
        lcs_block,
        b00.pack(),
        3,
        frame(move |h00, _| {
            let x00 = h00.as_handle();
            let b01 = Blk { i, j: j + h, n: h, t: t11, l: Some(x00) };
            Effect::fork_future(
                lcs_block,
                b01.pack(),
                c01,
                frame(move |h01, _| {
                    let x01 = h01.as_handle();
                    let b10 = Blk { i: i + h, j, n: h, t: Some(x00), l: l11 };
                    Effect::fork_future(
                        lcs_block,
                        b10.pack(),
                        c10,
                        frame(move |h10, _| {
                            let x10 = h10.as_handle();
                            let b11 = Blk {
                                i: i + h,
                                j: j + h,
                                n: h,
                                t: Some(x01),
                                l: Some(x10),
                            };
                            Effect::fork_future(
                                lcs_block,
                                b11.pack(),
                                c11,
                                frame(move |h11, _| {
                                    let x11 = h11.as_handle();
                                    // X00.join() — throttle (Fig. 11 l. 65).
                                    Effect::join(
                                        x00,
                                        frame(move |_, _| {
                                            Effect::ret(Value::Handles3([x01, x10, x11]))
                                        }),
                                    )
                                }),
                            )
                        }),
                    )
                }),
            )
        }),
    )
}

/// Root task: spawn the whole matrix as one future, then navigate the
/// bottom-right X11 chain down to the final leaf and extract `X(N, N)`.
fn lcs_root(_arg: Value, ctx: &mut TaskCtx) -> Effect {
    let params = ctx.app::<LcsParams>();
    let root_blk = Blk {
        i: 0,
        j: 0,
        n: params.n,
        t: None,
        l: None,
    };
    Effect::fork_future(
        lcs_block,
        root_blk.pack(),
        1,
        frame(|h, _| navigate(h.as_handle())),
    )
}

fn navigate(h: ThreadHandle) -> Effect {
    Effect::join(
        h,
        frame(|v, _| match v {
            Value::Handles3(hs) => navigate(hs[2]),
            Value::Pair(bot, _) => {
                let bot = bot.as_u32s();
                Effect::ret(*bot.last().expect("non-empty boundary") as u64)
            }
            other => panic!("unexpected block value: {other:?}"),
        }),
    )
}

/// Build the LCS program.
pub fn program(params: LcsParams) -> Program {
    Program {
        root: lcs_root,
        arg: Value::Unit,
        app: Arc::new(params),
        init: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::policy::Policy;

    #[test]
    fn reference_known_cases() {
        assert_eq!(lcs_reference(b"ABCBDAB", b"BDCABA"), 4);
        assert_eq!(lcs_reference(b"", b"xyz"), 0);
        assert_eq!(lcs_reference(b"same", b"same"), 4);
        assert_eq!(lcs_reference(b"abc", b"def"), 0);
        assert_eq!(lcs_reference(b"axbycz", b"abc"), 3);
    }

    #[test]
    fn kernel_matches_reference_on_whole_matrix() {
        // One big leaf block == the full DP.
        let p = LcsParams::random_alpha(16, 16, 5, 4);
        let (bot, rgt) = leaf_kernel(&p.a, &p.b, 0, 0, 16, &zeros(16), &zeros(16));
        let expected = lcs_reference(&p.a, &p.b);
        assert_eq!(bot[16], expected);
        assert_eq!(rgt[16], expected);
    }

    #[test]
    fn kernel_composes_across_blocks() {
        // Compute a 8x8 matrix as four 4x4 blocks manually and compare the
        // final corner with the reference.
        let p = LcsParams::random_alpha(8, 4, 9, 3);
        let z = zeros(4);
        let (b00_bot, b00_rgt) = leaf_kernel(&p.a, &p.b, 0, 0, 4, &z, &z);
        let (b01_bot, b01_rgt) = leaf_kernel(&p.a, &p.b, 0, 4, 4, &z, &b00_rgt);
        let (b10_bot, b10_rgt) = leaf_kernel(&p.a, &p.b, 4, 0, 4, &b00_bot, &z);
        let _ = &b10_bot;
        let (b11_bot, _) = leaf_kernel(&p.a, &p.b, 4, 4, 4, &b01_bot, &b10_rgt);
        let _ = b01_rgt;
        assert_eq!(b11_bot[4], lcs_reference(&p.a, &p.b));
    }

    fn run_lcs(policy: Policy, workers: usize, n: u64, c: u64, seed: u64) -> u64 {
        let params = LcsParams::random_alpha(n, c, seed, 4);
        let expected = lcs_reference(&params.a, &params.b) as u64;
        let cfg = RunConfig::new(workers, policy)
            .with_profile(profiles::test_profile())
            .with_seg_bytes(64 << 20);
        let report = dcs_core::run(cfg, program(params));
        assert_eq!(report.result.as_u64(), expected, "{policy:?} P={workers}");
        expected
    }

    #[test]
    fn single_leaf_root() {
        run_lcs(Policy::ContGreedy, 2, 8, 8, 1);
    }

    #[test]
    fn futures_greedy_matches_reference() {
        run_lcs(Policy::ContGreedy, 1, 32, 8, 2);
        run_lcs(Policy::ContGreedy, 4, 32, 8, 3);
        run_lcs(Policy::ContGreedy, 8, 64, 8, 4);
    }

    #[test]
    fn futures_stalling_matches_reference() {
        run_lcs(Policy::ContStalling, 1, 32, 8, 5);
        run_lcs(Policy::ContStalling, 4, 32, 8, 6);
    }

    #[test]
    fn futures_child_full_matches_reference() {
        run_lcs(Policy::ChildFull, 1, 32, 8, 7);
        run_lcs(Policy::ChildFull, 4, 32, 8, 8);
    }

    #[test]
    fn work_span_formulas() {
        let p = LcsParams::random(64, 8, 1);
        assert_eq!(p.t1(1.0), p.tc * 64);
        assert_eq!(p.t_inf(1.0), p.tc * 15);
        assert_eq!(LcsParams::tc_for(512), VTime::ns(340_000));
        assert_eq!(LcsParams::tc_for(256), VTime::ns(85_000));
    }

    #[test]
    fn consumer_counts() {
        // Interior block: all neighbours exist.
        let blk = Blk { i: 0, j: 0, n: 8, t: None, l: None };
        assert_eq!(child_consumers(&blk, 64), (2, 2, 2));
        // Global corner block (covers the whole matrix).
        assert_eq!(child_consumers(&blk, 8), (1, 1, 1));
        // Bottom edge, not right edge.
        let bottom = Blk { i: 56, j: 0, n: 8, t: None, l: None };
        assert_eq!(child_consumers(&bottom, 64), (2, 1, 1));
        // Right edge, not bottom.
        let right = Blk { i: 0, j: 56, n: 8, t: None, l: None };
        assert_eq!(child_consumers(&right, 64), (1, 2, 1));
    }
}
