//! UTS — the Unbalanced Tree Search benchmark (§V-C).
//!
//! UTS counts the nodes of an implicitly defined, highly unbalanced tree.
//! Each node owns a SHA-1 digest; child `i`'s digest is
//! `SHA1(parent ‖ i)`, so the identical tree is generated deterministically
//! from the root seed on any machine, and the node count is a built-in
//! correctness check across runtimes.
//!
//! We implement the *geometric* tree family used by the paper (T1 series):
//! the number of children of a node at depth `d` is geometrically
//! distributed with mean `b(d)`, where the *linear* shape decreases
//! `b(d) = b0 · (1 − d/gen_mx)` and the *fixed* shape keeps `b(d) = b0`
//! until the depth cutoff. The paper's T1L/T1XXL/T1WL instances have 10⁸+
//! nodes; the [`presets`] here are the same family scaled to simulator-
//! friendly sizes (DESIGN.md §2 records the mapping).
//!
//! Three implementations are provided:
//!
//! * [`serial_count`] — the sequential depth-first traversal (the paper's
//!   baseline for parallel efficiency),
//! * [`program`] — the straightforward **fork-join parallelization** of the
//!   traversal for `dcs-core` (one task per subtree, joined with its
//!   parent), which is the paper's headline demonstration,
//! * task expansion helpers reused by the bag-of-tasks runtimes in
//!   `dcs-bot` (Fig. 8's SAWS/Charm++/X10-GLB comparators).

use std::sync::Arc;

use dcs_core::prelude::*;
use dcs_core::HostWork;

use crate::sha1::{digest_to_unit, sha1, sha1_child, Digest};

/// Shape of the expected branching factor over depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// `b(d) = b0` for `d < gen_mx`, 0 after — bushy, abrupt cutoff.
    Fixed,
    /// `b(d) = b0 · (1 − d/gen_mx)` — the T1-series shape.
    Linear,
}

/// A geometric UTS tree instance.
#[derive(Clone, Debug)]
pub struct UtsSpec {
    pub b0: f64,
    pub gen_mx: u32,
    pub shape: Shape,
    pub seed: u64,
    /// Virtual cost per visited node (before per-child work); models the
    /// traversal bookkeeping of the native benchmark.
    pub node_cost: VTime,
    /// Virtual cost per generated child (one SHA-1 evaluation).
    pub child_cost: VTime,
}

impl UtsSpec {
    pub fn new(b0: f64, gen_mx: u32, shape: Shape, seed: u64) -> UtsSpec {
        UtsSpec {
            b0,
            gen_mx,
            shape,
            seed,
            // Calibrated against the paper's serial throughput on ITO-A
            // (5.27 Mnodes/s ≈ 190 ns/node with ~1 child per node on
            // average).
            node_cost: VTime::ns(120),
            child_cost: VTime::ns(60),
        }
    }

    /// Root digest for the instance.
    pub fn root(&self) -> Digest {
        sha1(&self.seed.to_be_bytes())
    }

    /// Expected branching factor at `depth`.
    fn b(&self, depth: u32) -> f64 {
        if depth >= self.gen_mx {
            return 0.0;
        }
        match self.shape {
            Shape::Fixed => self.b0,
            Shape::Linear => self.b0 * (1.0 - depth as f64 / self.gen_mx as f64),
        }
    }

    /// Number of children of a node: geometric with mean `b(depth)`, sampled
    /// from the node's digest (so it is a pure function of the tree). As in
    /// the reference UTS generator, the root has exactly `b0` children —
    /// otherwise a sizeable fraction of seeds would yield near-empty trees
    /// (a supercritical branching process still goes extinct with positive
    /// probability).
    pub fn num_children(&self, digest: &Digest, depth: u32) -> u32 {
        if depth == 0 {
            return self.b0.round() as u32;
        }
        let b = self.b(depth);
        if b <= 0.0 {
            return 0;
        }
        let p = 1.0 / (1.0 + b);
        let u = digest_to_unit(digest);
        // Geometric: floor(ln(1-u) / ln(1-p)), mean (1-p)/p = b.
        let m = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
        // Cap pathological tails; with b0 ≤ 8 this triggers with
        // probability < 1e-12 and keeps descriptor sizes bounded.
        m.min(10_000.0) as u32
    }

    /// Children digests of a node.
    pub fn children(&self, digest: &Digest, depth: u32) -> Vec<Digest> {
        let n = self.num_children(digest, depth);
        (0..n).map(|i| sha1_child(digest, i)).collect()
    }

    /// Virtual compute time to visit one node with `n_children` children.
    pub fn visit_cost(&self, n_children: u32) -> VTime {
        self.node_cost + self.child_cost * n_children as u64
    }
}

/// Result of a serial traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeInfo {
    pub nodes: u64,
    pub leaves: u64,
    pub max_depth: u32,
}

/// Sequential depth-first traversal (explicit stack; tree depth is bounded
/// by `gen_mx` but the node count is large).
pub fn serial_count(spec: &UtsSpec) -> TreeInfo {
    let mut stack: Vec<(Digest, u32)> = vec![(spec.root(), 0)];
    let mut info = TreeInfo {
        nodes: 0,
        leaves: 0,
        max_depth: 0,
    };
    while let Some((digest, depth)) = stack.pop() {
        info.nodes += 1;
        info.max_depth = info.max_depth.max(depth);
        let n = spec.num_children(&digest, depth);
        if n == 0 {
            info.leaves += 1;
            continue;
        }
        for i in 0..n {
            stack.push((sha1_child(&digest, i), depth + 1));
        }
    }
    info
}

/// The serial traversal's virtual execution time (for ideal-throughput
/// lines in Fig. 8/9): `Σ visit_cost(node)` at `compute_scale`.
pub fn serial_vtime(spec: &UtsSpec, compute_scale: f64) -> VTime {
    let mut stack: Vec<(Digest, u32)> = vec![(spec.root(), 0)];
    let mut total = VTime::ZERO;
    while let Some((digest, depth)) = stack.pop() {
        let n = spec.num_children(&digest, depth);
        total += spec.visit_cost(n);
        if n > 0 {
            for i in 0..n {
                stack.push((sha1_child(&digest, i), depth + 1));
            }
        }
    }
    total.scale(compute_scale)
}

// ---------------------------------------------------------------------
// Fork-join program
// ---------------------------------------------------------------------

fn digest_value(d: &Digest, depth: u32) -> Value {
    Value::pair(Value::Bytes(Arc::from(&d[..])), Value::U64(depth as u64))
}

fn value_digest(v: &Value) -> (Digest, u32) {
    let Value::Pair(bytes, depth) = v else {
        panic!("expected UTS node value")
    };
    let Value::Bytes(b) = bytes.as_ref() else {
        panic!("expected digest bytes")
    };
    let mut d = [0u8; 20];
    d.copy_from_slice(b);
    (d, depth.as_u64() as u32)
}

/// Count the subtree rooted at the argument node: expand children (real
/// SHA-1 work, charged the calibrated visit cost), spawn a task per child,
/// run the last child inline, join and sum.
pub fn uts_count(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let (digest, depth) = value_digest(&arg);
    let spec = ctx.app::<UtsSpec>();
    let n = spec.num_children(&digest, depth);
    let dur = ctx.scaled(spec.visit_cost(n));
    let work: HostWork = Box::new(move |ctx: &mut TaskCtx| {
        let spec = ctx.app::<UtsSpec>();
        let children = spec.children(&digest, depth);
        // Ship the children as a flat byte buffer.
        let mut flat = Vec::with_capacity(children.len() * 20);
        for c in &children {
            flat.extend_from_slice(c);
        }
        Value::Bytes(flat.into())
    });
    Effect::compute_with(
        dur,
        work,
        frame(move |flat, _| spawn_children(flat, depth)),
    )
}

/// Spawn tasks for all children but the last, run the last inline, then
/// join the handles and return `1 + Σ child counts`.
fn spawn_children(flat: Value, depth: u32) -> Effect {
    let Value::Bytes(flat) = flat else {
        panic!("expected children bytes")
    };
    let n = flat.len() / 20;
    if n == 0 {
        return Effect::ret(1u64);
    }
    spawn_from(flat, 0, depth, Vec::with_capacity(n - 1))
}

fn child_digest(flat: &Arc<[u8]>, i: usize) -> Digest {
    let mut d = [0u8; 20];
    d.copy_from_slice(&flat[i * 20..(i + 1) * 20]);
    d
}

fn spawn_from(flat: Arc<[u8]>, i: usize, depth: u32, handles: Vec<ThreadHandle>) -> Effect {
    let n = flat.len() / 20;
    let d = child_digest(&flat, i);
    if i + 1 == n {
        // Last child runs inline (plain call), then the joins begin.
        return Effect::call(
            uts_count,
            digest_value(&d, depth + 1),
            frame(move |last, _| join_from(handles, 0, 1 + last.as_u64())),
        );
    }
    Effect::fork(
        uts_count,
        digest_value(&d, depth + 1),
        frame(move |h, _| {
            let mut handles = handles;
            handles.push(h.as_handle());
            spawn_from(flat, i + 1, depth, handles)
        }),
    )
}

fn join_from(handles: Vec<ThreadHandle>, i: usize, acc: u64) -> Effect {
    if i == handles.len() {
        return Effect::ret(acc);
    }
    let h = handles[i];
    Effect::join(
        h,
        frame(move |v, _| join_from(handles, i + 1, acc + v.as_u64())),
    )
}

/// Build the fork-join UTS program for `spec`.
pub fn program(spec: UtsSpec) -> Program {
    let root = digest_value(&spec.root(), 0);
    Program {
        root: uts_count,
        arg: root,
        app: Arc::new(spec),
        init: None,
    }
}

/// Named tree instances: the T1 geometric family (linear shape, b0 = 4)
/// scaled to simulator sizes.
pub mod presets {
    use super::*;

    /// ~3 k nodes — unit tests and smoke runs.
    pub fn tiny() -> UtsSpec {
        UtsSpec::new(4.0, 10, Shape::Linear, 19)
    }

    /// ~80 k nodes — scaled analogue of T1L (small tree in Fig. 8).
    pub fn small() -> UtsSpec {
        UtsSpec::new(4.0, 15, Shape::Linear, 19)
    }

    /// ~0.3 M nodes — scaled analogue of T1XXL (medium tree).
    pub fn medium() -> UtsSpec {
        UtsSpec::new(4.0, 17, Shape::Linear, 19)
    }

    /// ~1.2 M nodes — scaled analogue of T1WL (large tree).
    pub fn large() -> UtsSpec {
        UtsSpec::new(4.0, 19, Shape::Linear, 19)
    }

    /// ~16 M nodes — used for the top of the Fig. 9 sweep, where the
    /// smaller trees would be work-starved at 1024 workers.
    pub fn huge() -> UtsSpec {
        UtsSpec::new(4.0, 23, Shape::Linear, 19)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::policy::Policy;

    #[test]
    fn tree_is_deterministic() {
        let a = serial_count(&presets::tiny());
        let b = serial_count(&presets::tiny());
        assert_eq!(a, b);
        assert!(a.nodes > 1000, "tiny tree has {} nodes", a.nodes);
        assert!(a.max_depth <= 10);
        // Leaves + internal = nodes; a geometric tree has many leaves.
        assert!(a.leaves > a.nodes / 3);
    }

    #[test]
    fn different_seeds_give_different_trees() {
        let a = serial_count(&UtsSpec::new(4.0, 6, Shape::Linear, 1));
        let b = serial_count(&UtsSpec::new(4.0, 6, Shape::Linear, 2));
        assert_ne!(a.nodes, b.nodes);
    }

    #[test]
    fn fixed_shape_is_bushier_than_linear() {
        let lin = serial_count(&UtsSpec::new(3.0, 6, Shape::Linear, 7));
        let fixed = serial_count(&UtsSpec::new(3.0, 6, Shape::Fixed, 7));
        assert!(fixed.nodes > lin.nodes);
    }

    #[test]
    fn depth_cutoff_respected() {
        let spec = UtsSpec::new(4.0, 5, Shape::Fixed, 3);
        let info = serial_count(&spec);
        assert!(info.max_depth <= 5);
        // A node at the cutoff has no children.
        assert_eq!(spec.num_children(&spec.root(), 5), 0);
    }

    #[test]
    fn fork_join_count_matches_serial_all_policies() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for policy in Policy::ALL {
            let cfg = RunConfig::new(4, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20);
            let report = dcs_core::run(cfg, program(spec.clone()));
            assert_eq!(report.result.as_u64(), expected, "{policy:?}");
        }
    }

    #[test]
    fn serial_vtime_scales() {
        let spec = presets::tiny();
        let t1 = serial_vtime(&spec, 1.0);
        let t2 = serial_vtime(&spec, 2.0);
        assert_eq!(t2, t1.scale(2.0));
        // Sanity: ~180 ns per node on average.
        let per_node = t1.as_ns() / serial_count(&spec).nodes;
        assert!((100..400).contains(&per_node), "{per_node} ns/node");
    }
}
