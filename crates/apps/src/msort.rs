//! Parallel mergesort — divide-and-conquer with data flowing through task
//! return values.
//!
//! Complements the other benchmarks: UTS returns scalars, LCS returns
//! boundary vectors through futures — mergesort moves the *entire dataset*
//! through task values, so steal and join costs scale with the payload.
//! This exposes the value-passing programming model of §VII ("data are only
//! exchanged via arguments or return values of tasks") on a workload whose
//! communication volume rivals its compute.
//!
//! The merge itself runs as charged host work; results are validated
//! against a host-side sort.

use std::sync::Arc;

use dcs_core::prelude::*;
use dcs_core::HostWork;
use dcs_sim::SimRng;

/// Workload parameters: the input array plus cost calibration.
#[derive(Clone, Debug)]
pub struct SortParams {
    pub data: Arc<[u32]>,
    /// Elements below which a task sorts sequentially.
    pub cutoff: usize,
    /// Virtual time per element compared/moved.
    pub per_elem: VTime,
}

impl SortParams {
    pub fn random(len: usize, cutoff: usize, seed: u64) -> SortParams {
        let mut rng = SimRng::new(seed);
        SortParams {
            data: (0..len).map(|_| rng.next_u64() as u32).collect(),
            cutoff: cutoff.max(1),
            per_elem: VTime::ns(12),
        }
    }
}

fn range_value(lo: u64, hi: u64) -> Value {
    Value::pair(lo.into(), hi.into())
}

/// Sort `data[lo..hi)`, returning the sorted run as a `U32s` value.
pub fn msort(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let (lo, hi) = arg.into_pair();
    let (lo, hi) = (lo.as_u64() as usize, hi.as_u64() as usize);
    let p = ctx.app::<SortParams>();
    let n = hi - lo;
    if n <= p.cutoff {
        // Sequential leaf: sort the slice as charged host work
        // (n log n comparisons).
        let dur = ctx.scaled(p.per_elem * (n.max(2) as u64 * n.max(2).ilog2() as u64));
        let work: HostWork = Box::new(move |ctx: &mut TaskCtx| {
            let p = ctx.app::<SortParams>();
            let mut v: Vec<u32> = p.data[lo..hi].to_vec();
            v.sort_unstable();
            Value::U32s(v.into())
        });
        return Effect::compute_with(dur, work, frame(|v, _| Effect::Return(v)));
    }
    let mid = lo + n / 2;
    Effect::fork(
        msort,
        range_value(lo as u64, mid as u64),
        frame(move |h, _| {
            let h = h.as_handle();
            Effect::call(
                msort,
                range_value(mid as u64, hi as u64),
                frame(move |right, _| {
                    let right = Arc::clone(right.as_u32s());
                    Effect::join(
                        h,
                        frame(move |left, ctx| {
                            let left = Arc::clone(left.as_u32s());
                            merge(left, right, ctx)
                        }),
                    )
                }),
            )
        }),
    )
}

/// Merge two sorted runs as charged host work.
fn merge(left: Arc<[u32]>, right: Arc<[u32]>, ctx: &mut TaskCtx) -> Effect {
    let p = ctx.app::<SortParams>();
    let total = left.len() + right.len();
    let dur = ctx.scaled(p.per_elem * total as u64);
    let work: HostWork = Box::new(move |_| {
        let mut out = Vec::with_capacity(left.len() + right.len());
        let (mut i, mut j) = (0, 0);
        while i < left.len() && j < right.len() {
            if left[i] <= right[j] {
                out.push(left[i]);
                i += 1;
            } else {
                out.push(right[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&left[i..]);
        out.extend_from_slice(&right[j..]);
        Value::U32s(out.into())
    });
    Effect::compute_with(dur, work, frame(|v, _| Effect::Return(v)))
}

/// Build a mergesort program over the whole input.
pub fn program(params: SortParams) -> Program {
    let n = params.data.len() as u64;
    Program::new(msort, range_value(0, n)).with_app(params)
}

/// T1 of the sort: merging dominates — `n log₂(n/cutoff)` merge moves plus
/// the leaf sorts.
pub fn t1(params: &SortParams, compute_scale: f64) -> VTime {
    let n = params.data.len() as u64;
    let levels = (n as f64 / params.cutoff as f64).log2().ceil().max(0.0) as u64;
    let c = params.cutoff.max(2) as u64;
    let leaf = params.per_elem * (c * c.ilog2() as u64) * n.div_ceil(c);
    (params.per_elem * n * levels + leaf).scale(compute_scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::policy::Policy;

    fn check(policy: Policy, workers: usize, len: usize, cutoff: usize) {
        let params = SortParams::random(len, cutoff, 42);
        let mut expect: Vec<u32> = params.data.to_vec();
        expect.sort_unstable();
        let cfg = RunConfig::new(workers, policy)
            .with_profile(profiles::test_profile())
            .with_seg_bytes(64 << 20);
        let r = dcs_core::run(cfg, program(params));
        assert_eq!(
            r.result.as_u32s().as_ref(),
            expect.as_slice(),
            "{policy:?} P={workers}"
        );
    }

    #[test]
    fn sorts_correctly_all_policies() {
        for policy in Policy::ALL {
            check(policy, 4, 1000, 32);
        }
    }

    #[test]
    fn sorts_edge_shapes() {
        check(Policy::ContGreedy, 1, 1, 8); // single element
        check(Policy::ContGreedy, 2, 7, 2); // odd length, tiny cutoff
        check(Policy::ContGreedy, 8, 4096, 64);
    }

    #[test]
    fn payload_moves_through_steals() {
        let params = SortParams::random(8192, 128, 7);
        let cfg = RunConfig::new(8, Policy::ContGreedy).with_seg_bytes(64 << 20);
        let r = dcs_core::run(cfg, program(params));
        assert!(r.stats.steals_ok > 0);
        // Joined runs ride in entries: bytes moved rival the array size.
        assert!(
            r.fabric.bytes_got > 8192,
            "expected payload traffic, got {} B",
            r.fabric.bytes_got
        );
    }

    #[test]
    fn t1_scales_with_input() {
        let small = SortParams::random(1024, 32, 1);
        let big = SortParams::random(4096, 32, 1);
        assert!(t1(&big, 1.0) > t1(&small, 1.0) * 3);
        assert_eq!(t1(&small, 2.0), t1(&small, 1.0).scale(2.0));
    }
}
