//! NQueens — classic irregular fork-join search.
//!
//! Counts the placements of `n` queens on an `n × n` board. The search tree
//! is highly irregular (subtrees die at different depths), making it a
//! standard stress test for work stealing — the same class of workload the
//! paper's introduction motivates. Each task extends a partial placement by
//! one row, forking one child per safe column.
//!
//! The board prefix travels as a byte vector in the task argument, so
//! stolen task sizes grow with depth — a nice contrast to UTS's fixed
//! 20-byte digests.

use std::sync::Arc;

use dcs_core::prelude::*;

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct NqParams {
    pub n: u32,
    /// Virtual time to test one column placement (board scan).
    pub probe_cost: VTime,
}

impl NqParams {
    pub fn new(n: u32) -> NqParams {
        NqParams {
            n,
            probe_cost: VTime::ns(60),
        }
    }
}

/// Known solution counts for validation.
pub const SOLUTIONS: [u64; 13] = [1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200];

/// Is placing a queen at (row = prefix.len(), col) safe?
fn safe(prefix: &[u8], col: u8) -> bool {
    let row = prefix.len();
    prefix.iter().enumerate().all(|(r, &c)| {
        c != col && (row - r) as i32 != (col as i32 - c as i32).abs()
    })
}

/// Sequential reference (host-side ground truth).
pub fn serial_count(n: u32) -> u64 {
    fn go(prefix: &mut Vec<u8>, n: u32) -> u64 {
        if prefix.len() == n as usize {
            return 1;
        }
        let mut total = 0;
        for col in 0..n as u8 {
            if safe(prefix, col) {
                prefix.push(col);
                total += go(prefix, n);
                prefix.pop();
            }
        }
        total
    }
    go(&mut Vec::new(), n)
}

fn prefix_value(prefix: &[u8]) -> Value {
    Value::Bytes(Arc::from(prefix))
}

/// Task: count completions of the placement prefix in the argument.
pub fn nq_count(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let Value::Bytes(prefix) = arg else {
        panic!("expected board prefix")
    };
    let params = *ctx.app::<NqParams>();
    let row = prefix.len() as u32;
    if row == params.n {
        return Effect::ret(1u64);
    }
    // Charge the column probes of this row as compute.
    let dur = ctx.scaled(params.probe_cost * params.n as u64);
    Effect::compute(
        dur,
        frame(move |_, _| {
            let safe_cols: Vec<u8> = (0..params.n as u8)
                .filter(|&c| safe(&prefix, c))
                .collect();
            if safe_cols.is_empty() {
                return Effect::ret(0u64);
            }
            spawn_cols(prefix, safe_cols, 0, Vec::new())
        }),
    )
}

/// Fork a child per safe column (last one runs inline), then join and sum.
fn spawn_cols(
    prefix: Arc<[u8]>,
    cols: Vec<u8>,
    i: usize,
    handles: Vec<ThreadHandle>,
) -> Effect {
    let mut child = prefix.to_vec();
    child.push(cols[i]);
    let child_v = prefix_value(&child);
    if i + 1 == cols.len() {
        return Effect::call(
            nq_count,
            child_v,
            frame(move |last, _| join_cols(handles, 0, last.as_u64())),
        );
    }
    Effect::fork(
        nq_count,
        child_v,
        frame(move |h, _| {
            let mut handles = handles;
            handles.push(h.as_handle());
            spawn_cols(prefix, cols, i + 1, handles)
        }),
    )
}

fn join_cols(handles: Vec<ThreadHandle>, i: usize, acc: u64) -> Effect {
    if i == handles.len() {
        return Effect::ret(acc);
    }
    let h = handles[i];
    Effect::join(
        h,
        frame(move |v, _| join_cols(handles, i + 1, acc + v.as_u64())),
    )
}

/// Build the NQueens program.
pub fn program(params: NqParams) -> Program {
    Program::new(nq_count, Value::Bytes(Arc::from(&[][..]))).with_app(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::policy::Policy;

    #[test]
    fn serial_matches_known_counts() {
        for (n, &expect) in SOLUTIONS.iter().enumerate().take(10) {
            assert_eq!(serial_count(n as u32), expect, "n={n}");
        }
    }

    #[test]
    fn safety_predicate() {
        assert!(safe(&[], 0));
        assert!(!safe(&[0], 0), "same column");
        assert!(!safe(&[0], 1), "diagonal");
        assert!(safe(&[0], 2));
        assert!(!safe(&[1, 3], 2), "diagonal from row 1");
    }

    #[test]
    fn parallel_matches_serial_all_policies() {
        for policy in Policy::ALL {
            let cfg = RunConfig::new(4, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20);
            let r = dcs_core::run(cfg, program(NqParams::new(7)));
            assert_eq!(r.result.as_u64(), SOLUTIONS[7], "{policy:?}");
        }
    }

    #[test]
    fn parallel_n8_with_steals() {
        let cfg = RunConfig::new(8, Policy::ContGreedy).with_seg_bytes(64 << 20);
        let r = dcs_core::run(cfg, program(NqParams::new(8)));
        assert_eq!(r.result.as_u64(), 92);
        assert!(r.stats.steals_ok > 0);
        // Stolen continuations carry board prefixes: bigger than UTS stacks
        // of comparable depth would suggest.
        assert!(r.stats.avg_stolen_bytes() > 200);
    }
}
