//! # dcs-uniaddr — the uni-address thread-stack address-space model
//!
//! The paper's continuation stealing rests on the *uni-address scheme*
//! (Akiyama & Taura, HPDC'15): every worker reserves a *uni-address region*
//! at the **same virtual address**, thread stacks of running threads live in
//! that region (a child's stack placed immediately on top of its parent's),
//! and suspended threads are *evacuated* to an arbitrary-address evacuation
//! region. Stealing a continuation copies the stack to the same virtual
//! address on the thief, so pointers into the stack stay valid; resuming a
//! suspended thread brings its stack back to the address it was first
//! allocated at.
//!
//! In this reproduction, thread "stacks" are position-independent frame
//! vectors (see `dcs-core`), so the *correctness* burden of the scheme
//! disappears — but its *resource behaviour* is what the paper argues about
//! (address-space consumption, pinning, placement discipline, migration
//! constraints), and that is modelled faithfully here:
//!
//! * [`UniRegion`] tracks slot occupancy of the uni-address region per
//!   worker, enforces the child-on-top-of-parent placement rule, detects
//!   conflicts when a migrated thread's home range is occupied on the
//!   destination worker, and records the high-water mark (= pinned address
//!   space a real deployment would consume).
//! * [`EvacRegion`] models the evacuation region for suspended threads.
//! * [`IsoAlloc`] implements the older *iso-address* alternative (globally
//!   unique stack addresses, PM2/Charm++ style) so the address-space
//!   consumption of both schemes can be compared (`ablate_uniaddr` bench).

use std::collections::BTreeMap;

/// A virtual-address range claimed for one thread's stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StackSlot {
    /// Base virtual address (simulated; bytes).
    pub base: u64,
    /// Slot length in bytes (the reserved max stack size).
    pub len: u64,
}

impl StackSlot {
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.len
    }
}

/// Occupancy statistics for one worker's uni-address region.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniStats {
    /// High-water mark of occupied address space above the region base.
    pub peak_bytes: u64,
    /// Number of times a migrated thread's home range was already occupied
    /// at its destination (the scheme's rare conflict case; the simulator
    /// falls back to running from the evacuation region and counts it).
    pub conflicts: u64,
    pub placements: u64,
    pub releases: u64,
}

/// One worker's uni-address region: an interval set of occupied stack slots.
///
/// All workers share the same `base`, which is the whole point of the scheme
/// — a stolen stack lands at the identical virtual address on the thief.
#[derive(Debug)]
pub struct UniRegion {
    base: u64,
    size: u64,
    /// Occupied slots: start → end (byte addresses).
    occupied: BTreeMap<u64, u64>,
    stats: UniStats,
}

impl UniRegion {
    /// The virtual base address every worker maps the region at. The value
    /// itself is arbitrary; sharing it across workers is what matters.
    pub const DEFAULT_BASE: u64 = 0x7000_0000_0000;

    pub fn new(base: u64, size: u64) -> UniRegion {
        UniRegion {
            base,
            size,
            occupied: BTreeMap::new(),
            stats: UniStats::default(),
        }
    }

    pub fn with_default_base(size: u64) -> UniRegion {
        UniRegion::new(Self::DEFAULT_BASE, size)
    }

    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    fn overlaps(&self, base: u64, len: u64) -> bool {
        let end = base + len;
        // A conflicting interval either starts inside [base, end) or starts
        // before `base` and extends past it.
        if self.occupied.range(base..end).next().is_some() {
            return true;
        }
        if let Some((_, &prev_end)) = self.occupied.range(..base).next_back() {
            if prev_end > base {
                return true;
            }
        }
        false
    }

    fn note_peak(&mut self) {
        if let Some((_, &end)) = self.occupied.iter().next_back() {
            self.stats.peak_bytes = self.stats.peak_bytes.max(end - self.base);
        }
    }

    /// Place a fresh stack for a newly spawned thread.
    ///
    /// Per the scheme, the child's stack goes immediately above the parent's
    /// (`parent = Some(slot)`); a root thread (or the first thread a worker
    /// runs) starts at the region base.
    ///
    /// Panics if the placement overlaps an occupied slot — that would mean
    /// the runtime violated the stack discipline, which is a bug, not a
    /// recoverable condition.
    pub fn place_child(&mut self, parent: Option<StackSlot>, len: u64) -> StackSlot {
        let base = parent.map_or(self.base, |p| p.end());
        assert!(
            base + len <= self.base + self.size,
            "uni-address region overflow: depth exceeded region size"
        );
        assert!(
            !self.overlaps(base, len),
            "uni-address invariant violated: child slot {base:#x}+{len:#x} occupied"
        );
        self.occupied.insert(base, base + len);
        self.stats.placements += 1;
        self.note_peak();
        StackSlot { base, len }
    }

    /// Claim a specific range for a thread arriving by migration (steal or
    /// greedy-join resume). Returns `false` — and counts a conflict — when
    /// the home range is occupied here; the caller then runs the thread from
    /// the evacuation region (position independence makes that legal in the
    /// simulator; the real system avoids this case by construction and we
    /// assert in tests that it stays rare).
    pub fn claim(&mut self, slot: StackSlot) -> bool {
        if slot.base < self.base
            || slot.end() > self.base + self.size
            || self.overlaps(slot.base, slot.len)
        {
            self.stats.conflicts += 1;
            return false;
        }
        self.occupied.insert(slot.base, slot.end());
        self.stats.placements += 1;
        self.note_peak();
        true
    }

    /// Release a slot (thread died, was suspended-and-evacuated, or its
    /// continuation was stolen away).
    pub fn release(&mut self, slot: StackSlot) {
        let removed = self.occupied.remove(&slot.base);
        assert_eq!(
            removed,
            Some(slot.end()),
            "releasing a slot that is not occupied: {slot:?}"
        );
        self.stats.releases += 1;
    }

    /// First-fit placement at any free range — the conflict fallback. When a
    /// migrated thread's home range is taken (`claim` returned `false`), the
    /// real system would have to relocate someone; position independence lets
    /// the simulator instead re-home the thread to any free range, charging
    /// nothing extra but keeping occupancy accounting exact.
    pub fn place_anywhere(&mut self, len: u64) -> StackSlot {
        let mut candidate = self.base;
        for (&start, &end) in self.occupied.iter() {
            if candidate + len <= start {
                break;
            }
            candidate = candidate.max(end);
        }
        assert!(
            candidate + len <= self.base + self.size,
            "uni-address region exhausted in place_anywhere"
        );
        self.occupied.insert(candidate, candidate + len);
        self.stats.placements += 1;
        self.note_peak();
        StackSlot {
            base: candidate,
            len,
        }
    }

    /// True when the given slot is currently occupied exactly as described.
    pub fn is_occupied(&self, slot: StackSlot) -> bool {
        self.occupied.get(&slot.base) == Some(&slot.end())
    }

    /// Number of live slots.
    pub fn live(&self) -> usize {
        self.occupied.len()
    }

    pub fn stats(&self) -> UniStats {
        self.stats
    }
}

/// Evacuation-region accounting: suspended threads' stacks parked at
/// arbitrary addresses. Only sizes matter (the region is not shared-address),
/// so this tracks live/peak bytes and counts evacuations.
#[derive(Debug, Default)]
pub struct EvacRegion {
    live_bytes: u64,
    peak_bytes: u64,
    evacuations: u64,
    restores: u64,
}

impl EvacRegion {
    pub fn new() -> EvacRegion {
        EvacRegion::default()
    }

    /// Park `bytes` of stack in the evacuation region.
    pub fn evacuate(&mut self, bytes: u64) {
        self.live_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        self.evacuations += 1;
    }

    /// Remove a previously evacuated stack (resume or remote migration).
    pub fn restore(&mut self, bytes: u64) {
        assert!(self.live_bytes >= bytes, "restore without evacuate");
        self.live_bytes -= bytes;
        self.restores += 1;
    }

    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    pub fn evacuations(&self) -> u64 {
        self.evacuations
    }

    pub fn restores(&self) -> u64 {
        self.restores
    }
}

/// The iso-address alternative (PM2 / Charm++ / Adaptive MPI): every thread
/// stack gets a *globally unique* virtual address so migration never needs
/// evacuation — at the price of address space (and, with RDMA, pinned
/// memory) proportional to the **total number of live threads in the whole
/// job**, not per-worker depth.
///
/// Shared by all workers of a run (the global uniqueness is the point).
#[derive(Debug)]
pub struct IsoAlloc {
    next: u64,
    base: u64,
    live: BTreeMap<u64, u64>,
    /// Freed slots available for reuse, keyed by length (uniqueness only
    /// matters while a stack is live; real iso-address systems recycle).
    free: BTreeMap<u64, Vec<u64>>,
    peak_bytes: u64,
}

impl Default for IsoAlloc {
    fn default() -> Self {
        Self::new()
    }
}

impl IsoAlloc {
    pub fn new() -> IsoAlloc {
        IsoAlloc {
            next: UniRegion::DEFAULT_BASE,
            base: UniRegion::DEFAULT_BASE,
            live: BTreeMap::new(),
            free: BTreeMap::new(),
            peak_bytes: 0,
        }
    }

    /// Allocate a globally-unique slot, reusing freed ranges when possible.
    /// The high-water mark (`peak_bytes`) is the address space the job must
    /// keep registered — it grows with the maximum number of *live* threads
    /// across all workers, which is the §II-D scalability problem.
    pub fn alloc(&mut self, len: u64) -> StackSlot {
        let base = if let Some(list) = self.free.get_mut(&len) {
            let base = list.pop().expect("empty free list present");
            if list.is_empty() {
                self.free.remove(&len);
            }
            base
        } else {
            let base = self.next;
            self.next += len;
            self.peak_bytes = self.peak_bytes.max(self.next - self.base);
            base
        };
        self.live.insert(base, base + len);
        StackSlot { base, len }
    }

    pub fn free(&mut self, slot: StackSlot) {
        let removed = self.live.remove(&slot.base);
        assert_eq!(removed, Some(slot.end()), "iso free of unallocated slot");
        self.free.entry(slot.len).or_default().push(slot.base);
    }

    /// Total reserved (pinned) address space so far.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    pub fn live(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLOT: u64 = 16 << 10;

    #[test]
    fn child_stacks_nest_upwards() {
        let mut r = UniRegion::with_default_base(1 << 20);
        let a = r.place_child(None, SLOT);
        let b = r.place_child(Some(a), SLOT);
        let c = r.place_child(Some(b), SLOT);
        assert_eq!(a.base, UniRegion::DEFAULT_BASE);
        assert_eq!(b.base, a.end());
        assert_eq!(c.base, b.end());
        assert_eq!(r.live(), 3);
        assert_eq!(r.stats().peak_bytes, 3 * SLOT);
    }

    #[test]
    fn release_and_reuse_keeps_peak_bounded() {
        let mut r = UniRegion::with_default_base(1 << 20);
        for _ in 0..100 {
            let a = r.place_child(None, SLOT);
            let b = r.place_child(Some(a), SLOT);
            r.release(b);
            r.release(a);
        }
        // Uni-address reuses addresses: peak stays at max simultaneous depth.
        assert_eq!(r.stats().peak_bytes, 2 * SLOT);
        assert_eq!(r.live(), 0);
    }

    #[test]
    fn claim_succeeds_when_free_conflicts_when_occupied() {
        let mut thief = UniRegion::with_default_base(1 << 20);
        let slot = StackSlot {
            base: UniRegion::DEFAULT_BASE + SLOT,
            len: SLOT,
        };
        assert!(thief.claim(slot), "free range must be claimable");
        assert!(thief.is_occupied(slot));
        // A second thread with the same home range cannot land here.
        assert!(!thief.claim(slot));
        assert_eq!(thief.stats().conflicts, 1);
    }

    #[test]
    fn overlap_detection_covers_partial_overlaps() {
        let mut r = UniRegion::new(0x1000, 1 << 20);
        let a = r.place_child(None, 0x100);
        // Starts before, extends into.
        assert!(!r.claim(StackSlot {
            base: 0x1000 - 0x80,
            len: 0x100
        }));
        // Entirely inside.
        assert!(!r.claim(StackSlot {
            base: a.base + 8,
            len: 8
        }));
        // Adjacent above is fine.
        assert!(r.claim(StackSlot {
            base: a.end(),
            len: 0x100
        }));
    }

    #[test]
    #[should_panic(expected = "not occupied")]
    fn double_release_panics() {
        let mut r = UniRegion::with_default_base(1 << 20);
        let a = r.place_child(None, SLOT);
        r.release(a);
        r.release(a);
    }

    #[test]
    #[should_panic(expected = "region overflow")]
    fn region_overflow_panics() {
        let mut r = UniRegion::with_default_base(SLOT);
        let a = r.place_child(None, SLOT);
        let _ = r.place_child(Some(a), SLOT);
    }

    #[test]
    fn evacuation_accounting() {
        let mut e = EvacRegion::new();
        e.evacuate(1000);
        e.evacuate(500);
        assert_eq!(e.live_bytes(), 1500);
        e.restore(1000);
        assert_eq!(e.live_bytes(), 500);
        assert_eq!(e.peak_bytes(), 1500);
        assert_eq!(e.evacuations(), 2);
        assert_eq!(e.restores(), 1);
    }

    #[test]
    fn iso_address_consumption_grows_with_live_threads() {
        // The motivating contrast from §II-D: iso-address peak grows with
        // the number of simultaneously live threads across the whole job;
        // uni-address peak is bounded by per-worker live depth.
        let mut iso = IsoAlloc::new();
        let mut uni = UniRegion::with_default_base(1 << 30);
        // 1000 threads live at once.
        let islots: Vec<_> = (0..1000).map(|_| iso.alloc(SLOT)).collect();
        assert_eq!(iso.peak_bytes(), 1000 * SLOT);
        for s in islots {
            iso.free(s);
        }
        // Freed slots are reused — the peak does not keep growing.
        let again: Vec<_> = (0..1000).map(|_| iso.alloc(SLOT)).collect();
        assert_eq!(iso.peak_bytes(), 1000 * SLOT);
        for s in again {
            iso.free(s);
        }
        assert_eq!(iso.live(), 0);
        // Meanwhile uni-address handles the same churn in one slot.
        for _ in 0..2000 {
            let u = uni.place_child(None, SLOT);
            uni.release(u);
        }
        assert_eq!(uni.stats().peak_bytes, SLOT);
    }

    #[test]
    fn place_anywhere_finds_gaps() {
        let mut r = UniRegion::new(0x0, 0x1000);
        let a = r.place_child(None, 0x100); // [0, 0x100)
        let b = r.claim(StackSlot {
            base: 0x200,
            len: 0x100,
        }); // [0x200, 0x300)
        assert!(b);
        // First fit: the gap [0x100, 0x200) holds a 0x100 slot.
        let g = r.place_anywhere(0x100);
        assert_eq!(g.base, 0x100);
        // A bigger request skips the gap and lands after 0x300.
        let big = r.place_anywhere(0x200);
        assert_eq!(big.base, 0x300);
        r.release(a);
        // Freed head range is reused.
        let h = r.place_anywhere(0x80);
        assert_eq!(h.base, 0x0);
    }

    #[test]
    fn claim_outside_region_is_conflict() {
        let mut r = UniRegion::new(0x1000, 0x1000);
        assert!(!r.claim(StackSlot {
            base: 0x100,
            len: 0x100
        }));
        assert!(!r.claim(StackSlot {
            base: 0x1f00,
            len: 0x200
        }));
        assert_eq!(r.stats().conflicts, 2);
    }
}
