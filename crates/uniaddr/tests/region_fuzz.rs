//! Property tests for the uni-address interval allocator: every sequence of
//! placements, claims and releases must agree with a naive interval-set
//! model, and the iso-address allocator must never double-hand-out a range.

use proptest::prelude::*;

use dcs_uniaddr::{IsoAlloc, StackSlot, UniRegion};

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Place a child on top of the live slot with this (mod) index.
    PlaceChild(u8),
    /// Claim an arbitrary aligned range.
    Claim { base_kb: u16, len_kb: u8 },
    /// Release the live slot with this (mod) index.
    Release(u8),
    /// First-fit place of this many KiB.
    Anywhere(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..8).prop_map(Op::PlaceChild),
        2 => (0u16..64, 1u8..8).prop_map(|(base_kb, len_kb)| Op::Claim { base_kb, len_kb }),
        3 => (0u8..8).prop_map(Op::Release),
        2 => (1u8..8).prop_map(Op::Anywhere),
    ]
}

fn overlaps(a: StackSlot, b: StackSlot) -> bool {
    a.base < b.end() && b.base < a.end()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn uni_region_matches_interval_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        const BASE: u64 = 0x1000;
        const SIZE: u64 = 64 << 10;
        let mut r = UniRegion::new(BASE, SIZE);
        let mut model: Vec<StackSlot> = Vec::new();

        for op in ops {
            match op {
                Op::PlaceChild(i) => {
                    let parent = if model.is_empty() {
                        None
                    } else {
                        Some(model[i as usize % model.len()])
                    };
                    let base = parent.map_or(BASE, |p| p.end());
                    let len = 1 << 10;
                    let fits = base + len <= BASE + SIZE;
                    let free = model.iter().all(|&s| !overlaps(StackSlot { base, len }, s));
                    if fits && free {
                        let got = r.place_child(parent, len);
                        prop_assert_eq!(got.base, base);
                        model.push(got);
                    }
                    // Occupied/overflow placements would panic by contract;
                    // the model skips them (the scheduler pre-checks via
                    // claim).
                }
                Op::Claim { base_kb, len_kb } => {
                    let slot = StackSlot {
                        base: BASE + (base_kb as u64) * 1024,
                        len: (len_kb as u64) * 1024,
                    };
                    let legal = slot.end() <= BASE + SIZE
                        && model.iter().all(|&s| !overlaps(slot, s));
                    let got = r.claim(slot);
                    prop_assert_eq!(got, legal, "claim disagreed with model for {:?}", slot);
                    if got {
                        model.push(slot);
                    }
                }
                Op::Release(i) => {
                    if !model.is_empty() {
                        let idx = i as usize % model.len();
                        let slot = model.swap_remove(idx);
                        r.release(slot);
                    }
                }
                Op::Anywhere(kb) => {
                    let len = (kb as u64) * 1024;
                    // Only legal when some gap fits; compute from the model.
                    let mut slots = model.clone();
                    slots.sort_by_key(|s| s.base);
                    let mut candidate = BASE;
                    for s in &slots {
                        if candidate + len <= s.base {
                            break;
                        }
                        candidate = candidate.max(s.end());
                    }
                    if candidate + len <= BASE + SIZE {
                        let got = r.place_anywhere(len);
                        prop_assert_eq!(got.base, candidate, "first-fit disagreed");
                        model.push(got);
                    }
                }
            }
            prop_assert_eq!(r.live(), model.len());
        }

        // Release everything: region must end empty.
        for slot in model.drain(..) {
            r.release(slot);
        }
        prop_assert_eq!(r.live(), 0);
    }

    #[test]
    fn iso_alloc_never_overlaps_live_ranges(
        ops in proptest::collection::vec((proptest::bool::ANY, 1u8..5), 1..80)
    ) {
        let mut iso = IsoAlloc::new();
        let mut live: Vec<StackSlot> = Vec::new();
        for (alloc, kb) in ops {
            if alloc || live.is_empty() {
                let slot = iso.alloc((kb as u64) * 1024);
                for &s in &live {
                    prop_assert!(!overlaps(slot, s), "{slot:?} overlaps {s:?}");
                }
                live.push(slot);
            } else {
                let slot = live.swap_remove(0);
                iso.free(slot);
            }
            prop_assert_eq!(iso.live(), live.len());
        }
        // Peak only counts the bump frontier, never shrinks below live max.
        let max_end = live.iter().map(|s| s.end()).max().unwrap_or(0);
        if max_end > 0 {
            prop_assert!(iso.peak_bytes() >= max_end - dcs_uniaddr::UniRegion::DEFAULT_BASE);
        }
    }
}
