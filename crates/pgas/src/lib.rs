//! # dcs-pgas — global-heap support for the dcs runtime
//!
//! The paper's programs exchange data only through task arguments and
//! return values; §VII states that "efficient support for global heaps,
//! such as Partitioned Global Address Space (PGAS) or Distributed Shared
//! Memory (DSM), remains for future work". This crate provides that
//! support on the simulated fabric:
//!
//! * [`GlobalVec`] — a distributed `u64` array living in the workers'
//!   pinned segments, with [`Dist::Block`] or [`Dist::Cyclic`] layout,
//! * element/block addressing that task code turns into
//!   [`dcs_core::RmaOp`] effects (one-sided gets/puts/fetch-adds charged
//!   by the fabric like every other verb),
//! * owner-side bulk initialization and draining for program setup and
//!   verification (used through [`dcs_core::Program::with_init`]).
//!
//! A `GlobalVec` is plain metadata (`Copy`-able into the application
//! context and task arguments); the data lives in the machine.

use dcs_core::RmaOp;
use dcs_sim::{GlobalAddr, Machine, WorkerId, WORD};

/// Distribution of elements over workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dist {
    /// Contiguous blocks of `⌈len/P⌉` elements per worker — neighbours are
    /// co-located (good for stencil/block algorithms).
    Block,
    /// Element `i` lives on worker `i mod P` — uniform load for skewed
    /// access patterns.
    Cyclic,
}

/// A distributed array of `u64` words in pinned memory.
///
/// Metadata only — cheap to copy into app contexts; all access goes through
/// the owning [`Machine`] (setup/verification) or through [`RmaOp`] effects
/// (task code).
#[derive(Clone, Copy, Debug)]
pub struct GlobalVec {
    len: u64,
    workers: u32,
    dist: Dist,
    /// Byte offset of the local block within each worker's segment (the
    /// allocation is performed identically on every worker, so one offset
    /// describes all of them).
    off: u32,
    /// Elements held per worker (block size).
    per_worker: u64,
}

impl GlobalVec {
    /// Allocate a `len`-element vector across all workers of `m`, zeroed.
    ///
    /// Must run before workers execute (use
    /// [`dcs_core::Program::with_init`]); every worker contributes an equal
    /// pinned block, mirroring a symmetric-heap `shmalloc`.
    pub fn alloc(m: &mut Machine, len: u64, dist: Dist) -> GlobalVec {
        let workers = m.workers();
        let per_worker = len.div_ceil(workers as u64);
        let bytes = (per_worker * WORD as u64) as u32;
        let mut off = None;
        for w in 0..workers {
            let a = m.alloc(w, bytes);
            match off {
                None => off = Some(a.off),
                Some(o) => assert_eq!(
                    o, a.off,
                    "symmetric allocation requires identical segment layouts"
                ),
            }
        }
        GlobalVec {
            len,
            workers: workers as u32,
            dist,
            off: off.expect("at least one worker"),
            per_worker,
        }
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn dist(&self) -> Dist {
        self.dist
    }

    /// Owner and slot of element `i`.
    #[inline]
    fn place(&self, i: u64) -> (WorkerId, u64) {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        match self.dist {
            Dist::Block => (
                (i / self.per_worker) as WorkerId,
                i % self.per_worker,
            ),
            Dist::Cyclic => (
                (i % self.workers as u64) as WorkerId,
                i / self.workers as u64,
            ),
        }
    }

    /// Global address of element `i`.
    pub fn addr(&self, i: u64) -> GlobalAddr {
        let (w, slot) = self.place(i);
        GlobalAddr::new(w, self.off + (slot * WORD as u64) as u32)
    }

    /// Worker owning element `i`.
    pub fn owner(&self, i: u64) -> WorkerId {
        self.place(i).0
    }

    /// Number of elements stored on worker `w`.
    pub fn local_len(&self, w: WorkerId) -> u64 {
        match self.dist {
            Dist::Block => {
                let start = (w as u64) * self.per_worker;
                self.len.saturating_sub(start).min(self.per_worker)
            }
            Dist::Cyclic => {
                let base = self.len / self.workers as u64;
                let extra = ((w as u64) < self.len % self.workers as u64) as u64;
                base + extra
            }
        }
    }

    /// `RmaOp` reading element `i`.
    pub fn get(&self, i: u64) -> RmaOp {
        RmaOp::GetWord(self.addr(i))
    }

    /// `RmaOp` writing element `i`.
    pub fn put(&self, i: u64, v: u64) -> RmaOp {
        RmaOp::PutWord(self.addr(i), v)
    }

    /// `RmaOp` atomically adding to element `i`.
    pub fn fetch_add(&self, i: u64, add: u64) -> RmaOp {
        RmaOp::FetchAdd(self.addr(i), add)
    }

    /// `RmaOp` reading the contiguous-on-owner range `[i, i+n)`. Only legal
    /// for [`Dist::Block`] ranges that stay within one owner.
    pub fn get_range(&self, i: u64, n: u64) -> RmaOp {
        assert_eq!(self.dist, Dist::Block, "ranges need a block distribution");
        assert!(n >= 1 && i + n <= self.len);
        assert_eq!(
            self.owner(i),
            self.owner(i + n - 1),
            "range [{i}, {}) spans owners",
            i + n
        );
        RmaOp::GetBlock(self.addr(i), n as u32)
    }

    /// `RmaOp` writing the contiguous-on-owner range starting at `i`.
    pub fn put_range(&self, i: u64, vals: std::sync::Arc<[u64]>) -> RmaOp {
        assert_eq!(self.dist, Dist::Block, "ranges need a block distribution");
        let n = vals.len() as u64;
        assert!(n >= 1 && i + n <= self.len);
        assert_eq!(self.owner(i), self.owner(i + n - 1));
        RmaOp::PutBlock(self.addr(i), vals)
    }

    // ------------------------------------------------------------------
    // Host-side (setup / verification) access — cost-free, for use before
    // the simulation starts or after it finishes.
    // ------------------------------------------------------------------

    /// Fill the vector from a slice (setup phase).
    pub fn fill(&self, m: &mut Machine, data: &[u64]) {
        assert_eq!(data.len() as u64, self.len);
        for (i, &v) in data.iter().enumerate() {
            m.poke_word(self.addr(i as u64), v);
        }
    }

    /// Read the whole vector back (verification phase).
    pub fn to_vec(&self, m: &Machine) -> Vec<u64> {
        (0..self.len).map(|i| m.peek_word(self.addr(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_sim::{profiles, MachineConfig};

    fn machine(workers: usize) -> Machine {
        Machine::new(MachineConfig::new(workers, profiles::test_profile()).with_seg_bytes(1 << 20))
    }

    #[test]
    fn block_layout_places_contiguously() {
        let mut m = machine(4);
        let v = GlobalVec::alloc(&mut m, 100, Dist::Block);
        assert_eq!(v.owner(0), 0);
        assert_eq!(v.owner(24), 0);
        assert_eq!(v.owner(25), 1);
        assert_eq!(v.owner(99), 3);
        assert_eq!(v.local_len(0), 25);
        assert_eq!(v.local_len(3), 25);
        // Consecutive same-owner elements are word-adjacent.
        assert_eq!(v.addr(1).off - v.addr(0).off, WORD);
    }

    #[test]
    fn cyclic_layout_round_robins() {
        let mut m = machine(4);
        let v = GlobalVec::alloc(&mut m, 10, Dist::Cyclic);
        assert_eq!(v.owner(0), 0);
        assert_eq!(v.owner(1), 1);
        assert_eq!(v.owner(5), 1);
        assert_eq!(v.local_len(0), 3); // elements 0, 4, 8
        assert_eq!(v.local_len(1), 3); // 1, 5, 9
        assert_eq!(v.local_len(3), 2); // 3, 7
    }

    #[test]
    fn fill_and_read_back() {
        let mut m = machine(3);
        for dist in [Dist::Block, Dist::Cyclic] {
            let v = GlobalVec::alloc(&mut m, 17, dist);
            let data: Vec<u64> = (0..17).map(|i| i * i).collect();
            v.fill(&mut m, &data);
            assert_eq!(v.to_vec(&m), data, "{dist:?}");
        }
    }

    #[test]
    fn uneven_block_tail() {
        let mut m = machine(4);
        let v = GlobalVec::alloc(&mut m, 10, Dist::Block); // 3 per worker, tail 1
        assert_eq!(v.local_len(0), 3);
        assert_eq!(v.local_len(3), 1);
        assert_eq!(v.owner(9), 3);
        let data: Vec<u64> = (0..10).collect();
        v.fill(&mut m, &data);
        assert_eq!(v.to_vec(&m), data);
    }

    #[test]
    #[should_panic(expected = "spans owners")]
    fn cross_owner_range_rejected() {
        let mut m = machine(2);
        let v = GlobalVec::alloc(&mut m, 8, Dist::Block); // 4 + 4
        let _ = v.get_range(2, 4); // elements 2..6 span both workers
    }

    #[test]
    fn rma_ops_target_right_addresses() {
        let mut m = machine(2);
        let v = GlobalVec::alloc(&mut m, 8, Dist::Block);
        match v.get(5) {
            RmaOp::GetWord(a) => assert_eq!(a, v.addr(5)),
            other => panic!("{other:?}"),
        }
        match v.fetch_add(0, 3) {
            RmaOp::FetchAdd(a, add) => {
                assert_eq!(a, v.addr(0));
                assert_eq!(add, 3);
            }
            other => panic!("{other:?}"),
        }
        match v.get_range(4, 4) {
            RmaOp::GetBlock(a, n) => {
                assert_eq!(a, v.addr(4));
                assert_eq!(n, 4);
            }
            other => panic!("{other:?}"),
        }
    }
}
