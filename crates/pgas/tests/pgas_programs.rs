//! End-to-end PGAS programs: tasks touching global memory through RMA
//! effects, verified by reading the machine back after the run.

use std::sync::Arc;

use dcs_core::frame::frame;
use dcs_core::layout::SegLayout;
use dcs_core::prelude::*;
use dcs_core::run_full;
use dcs_pgas::{Dist, GlobalVec};
use dcs_sim::{Machine, MachineConfig};

/// Compute the layout-deterministic `GlobalVec` metadata that
/// `Program::with_init` will reproduce inside the real machine: allocation
/// order in identical segment layouts yields identical offsets.
fn plan<T>(cfg: &RunConfig, f: impl FnOnce(&mut Machine) -> T) -> T {
    let mut scratch = Machine::new(
        MachineConfig::new(cfg.workers, cfg.profile.clone())
            .with_seg_bytes(cfg.seg_bytes)
            .with_reserved(SegLayout::new(cfg).reserved),
    );
    f(&mut scratch)
}

// ---------------------------------------------------------------------
// SAXPY: y[i] += a · x[i] with bulk block RMA
// ---------------------------------------------------------------------

struct Saxpy {
    x: GlobalVec,
    y: GlobalVec,
    a: u64,
    chunk: u64,
}

fn saxpy_chunk(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let (lo, hi) = arg.into_pair();
    let (lo, hi) = (lo.as_u64(), hi.as_u64());
    let app = ctx.app::<Saxpy>();
    let n = hi - lo;
    let (x, y, a) = (app.x, app.y, app.a);
    Effect::rma(
        x.get_range(lo, n),
        frame(move |xs, _| {
            let xs = Arc::clone(xs.as_u64s());
            Effect::rma(
                y.get_range(lo, n),
                frame(move |ys, _| {
                    let out: Arc<[u64]> = ys
                        .as_u64s()
                        .iter()
                        .zip(xs.iter())
                        .map(|(&yv, &xv)| yv + a * xv)
                        .collect();
                    Effect::rma(y.put_range(lo, out), frame(|_, _| Effect::ret(Value::Unit)))
                }),
            )
        }),
    )
}

/// Binary fork-join over chunk-aligned halves.
fn saxpy_range(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let (lo, hi) = arg.into_pair();
    let (lo, hi) = (lo.as_u64(), hi.as_u64());
    let chunk = ctx.app::<Saxpy>().chunk;
    if hi - lo <= chunk {
        return saxpy_chunk(Value::pair(lo.into(), hi.into()), ctx);
    }
    let halves = (hi - lo) / chunk / 2;
    let mid = lo + halves.max(1) * chunk;
    Effect::fork(
        saxpy_range,
        Value::pair(lo.into(), mid.into()),
        frame(move |h, _| {
            let h = h.as_handle();
            Effect::call(
                saxpy_range,
                Value::pair(mid.into(), hi.into()),
                frame(move |_, _| Effect::join(h, frame(|_, _| Effect::ret(Value::Unit)))),
            )
        }),
    )
}

#[test]
fn saxpy_matches_host_computation() {
    for policy in [Policy::ContGreedy, Policy::ContStalling, Policy::ChildFull] {
        for workers in [1usize, 4] {
            let n: u64 = 256;
            let chunk: u64 = 16; // divides each worker's block evenly
            let cfg = RunConfig::new(workers, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20);
            let (x, y) = plan(&cfg, |m| {
                (
                    GlobalVec::alloc(m, n, Dist::Block),
                    GlobalVec::alloc(m, n, Dist::Block),
                )
            });
            let xs: Vec<u64> = (0..n).map(|i| i % 97).collect();
            let ys: Vec<u64> = (0..n).map(|i| 1000 + i).collect();
            let (xs_init, ys_init) = (xs.clone(), ys.clone());

            let program = Program::new(saxpy_range, Value::pair(0u64.into(), n.into()))
                .with_app(Saxpy { x, y, a: 3, chunk })
                .with_init(move |m| {
                    let x2 = GlobalVec::alloc(m, n, Dist::Block);
                    let y2 = GlobalVec::alloc(m, n, Dist::Block);
                    x2.fill(m, &xs_init);
                    y2.fill(m, &ys_init);
                });
            let (report, machine) = run_full(cfg, program);
            assert_eq!(report.result, Value::Unit);
            let expect: Vec<u64> = ys.iter().zip(&xs).map(|(&yv, &xv)| yv + 3 * xv).collect();
            assert_eq!(
                y.to_vec(&machine),
                expect,
                "{policy:?} P={workers}"
            );
            assert_eq!(x.to_vec(&machine), xs, "x must be untouched");
        }
    }
}

// ---------------------------------------------------------------------
// Histogram: global fetch-and-add contention
// ---------------------------------------------------------------------

struct Hist {
    bins: GlobalVec,
}

fn hist_range(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let (lo, hi) = arg.into_pair();
    let (lo, hi) = (lo.as_u64(), hi.as_u64());
    if hi - lo > 8 {
        let mid = lo + (hi - lo) / 2;
        return Effect::fork(
            hist_range,
            Value::pair(lo.into(), mid.into()),
            frame(move |h, _| {
                let h = h.as_handle();
                Effect::call(
                    hist_range,
                    Value::pair(mid.into(), hi.into()),
                    frame(move |_, _| Effect::join(h, frame(|_, _| Effect::ret(Value::Unit)))),
                )
            }),
        );
    }
    bump(lo, hi, ctx)
}

fn bump(i: u64, hi: u64, ctx: &mut TaskCtx) -> Effect {
    if i == hi {
        return Effect::ret(Value::Unit);
    }
    let bins = ctx.app::<Hist>().bins;
    let bin = (i * i) % bins.len();
    Effect::rma(
        bins.fetch_add(bin, 1),
        frame(move |_, ctx| bump(i + 1, hi, ctx)),
    )
}

#[test]
fn global_histogram_is_exact() {
    let items: u64 = 200;
    let nbins: u64 = 8;
    for workers in [1usize, 3, 6] {
        let cfg = RunConfig::new(workers, Policy::ContGreedy)
            .with_profile(profiles::test_profile())
            .with_seg_bytes(64 << 20);
        let bins = plan(&cfg, |m| GlobalVec::alloc(m, nbins, Dist::Cyclic));
        let program = Program::new(hist_range, Value::pair(0u64.into(), items.into()))
            .with_app(Hist { bins })
            .with_init(move |m| {
                let _ = GlobalVec::alloc(m, nbins, Dist::Cyclic);
            });
        let (report, machine) = run_full(cfg, program);
        assert_eq!(report.result, Value::Unit);
        let mut expect = vec![0u64; nbins as usize];
        for i in 0..items {
            expect[((i * i) % nbins) as usize] += 1;
        }
        assert_eq!(bins.to_vec(&machine), expect, "P={workers}");
        assert_eq!(
            bins.to_vec(&machine).iter().sum::<u64>(),
            items,
            "no increment lost or duplicated"
        );
    }
}

/// Bulk RMA amortizes round trips: summing a remote vector with
/// `get_range` chunks issues far fewer remote operations — and finishes
/// sooner — than reading it word by word.
#[test]
fn bulk_rma_beats_word_wise_access() {
    let n: u64 = 128;
    let workers = 4;

    struct SumApp {
        x: GlobalVec,
        chunk: u64,
    }

    /// Word-wise: get x[i] one element at a time.
    fn sum_words(arg: Value, ctx: &mut TaskCtx) -> Effect {
        let (i, acc) = arg.into_pair();
        let (i, acc) = (i.as_u64(), acc.as_u64());
        let x = ctx.app::<SumApp>().x;
        if i == x.len() {
            return Effect::ret(acc);
        }
        Effect::rma(
            x.get(i),
            frame(move |v, ctx| {
                sum_words(Value::pair((i + 1).into(), (acc + v.as_u64()).into()), ctx)
            }),
        )
    }

    /// Bulk: one get_range per owner-contiguous chunk.
    fn sum_chunks(arg: Value, ctx: &mut TaskCtx) -> Effect {
        let (i, acc) = arg.into_pair();
        let (i, acc) = (i.as_u64(), acc.as_u64());
        let app = ctx.app::<SumApp>();
        let (x, chunk) = (app.x, app.chunk);
        if i == x.len() {
            return Effect::ret(acc);
        }
        let n = chunk.min(x.len() - i);
        Effect::rma(
            x.get_range(i, n),
            frame(move |vs, ctx| {
                let s: u64 = vs.as_u64s().iter().sum();
                sum_chunks(Value::pair((i + n).into(), (acc + s).into()), ctx)
            }),
        )
    }

    let mk = |root: TaskFn| {
        let cfg = RunConfig::new(workers, Policy::ContGreedy)
            .with_profile(profiles::itoa())
            .with_seg_bytes(64 << 20);
        let x = plan(&cfg, |m| GlobalVec::alloc(m, n, Dist::Block));
        let data: Vec<u64> = (1..=n).collect();
        let program = Program::new(root, Value::pair(0u64.into(), 0u64.into()))
            .with_app(SumApp { x, chunk: 16 })
            .with_init(move |m| {
                let x2 = GlobalVec::alloc(m, n, Dist::Block);
                x2.fill(m, &data);
            });
        run(cfg, program)
    };

    let words = mk(sum_words);
    let chunks = mk(sum_chunks);
    let expect = n * (n + 1) / 2;
    assert_eq!(words.result.as_u64(), expect);
    assert_eq!(chunks.result.as_u64(), expect);
    assert!(
        chunks.fabric.remote_gets * 4 < words.fabric.remote_gets,
        "bulk {} vs word-wise {} remote gets",
        chunks.fabric.remote_gets,
        words.fabric.remote_gets
    );
    assert!(
        chunks.elapsed < words.elapsed,
        "bulk {} should beat word-wise {}",
        chunks.elapsed,
        words.elapsed
    );
}
