//! Golden parallel-equals-sequential test for the sweep harness.
//!
//! Runs a small fig6-style experiment matrix — (bench, N, config, seed) over
//! real simulations — once with `jobs = 1` and once with `jobs = 4`, renders
//! both to full CSV strings through the same `csv_line` path the bench bins
//! use, and requires the two documents to be **byte-identical**. This is the
//! contract that makes `--jobs` safe to default on: host parallelism may
//! only change wall-clock time, never a single output byte.

use dcs_apps::pfor::{pfor_program, recpfor_program, PforParams};
use dcs_bench::{csv_line, sweep};
use dcs_core::prelude::*;

struct Config {
    name: &'static str,
    policy: Policy,
    free: FreeStrategy,
}

const CONFIGS: [Config; 3] = [
    Config {
        name: "baseline",
        policy: Policy::ContStalling,
        free: FreeStrategy::LockQueue,
    },
    Config {
        name: "greedy",
        policy: Policy::ContGreedy,
        free: FreeStrategy::LocalCollection,
    },
    Config {
        name: "child-full",
        policy: Policy::ChildFull,
        free: FreeStrategy::LocalCollection,
    },
];

/// The miniature fig6 matrix: bench × N × config × seed, in render order.
fn cells() -> Vec<(&'static str, u64, usize, u64)> {
    let mut out = Vec::new();
    for (bench, sizes) in [("PFor", [1u64 << 8, 1 << 9]), ("RecPFor", [1 << 5, 1 << 6])] {
        for n in sizes {
            for (ci, _) in CONFIGS.iter().enumerate() {
                for seed in [0x5EED, 0x5EEE] {
                    out.push((bench, n, ci, seed));
                }
            }
        }
    }
    out
}

/// Render the whole experiment to one CSV document at the given job count.
fn render(jobs: usize) -> String {
    let workers = 16;
    let cells = cells();
    let reports = sweep::run_matrix(&cells, jobs, |_, &(bench, n, ci, seed)| {
        let cfg = RunConfig::new(workers, CONFIGS[ci].policy)
            .with_free_strategy(CONFIGS[ci].free)
            .with_seed(seed)
            .with_seg_bytes(16 << 20);
        let params = PforParams::paper(n);
        let program = match bench {
            "PFor" => pfor_program(params),
            _ => recpfor_program(params),
        };
        run(cfg, program)
    });

    let mut doc = String::from("bench,n,config,seed,elapsed_ns,steals_ok,outstanding,threads\n");
    for (&(bench, n, ci, seed), r) in cells.iter().zip(&reports) {
        doc.push_str(&csv_line(&[
            &bench,
            &n,
            &CONFIGS[ci].name,
            &seed,
            &r.elapsed.as_ns(),
            &r.stats.steals_ok,
            &r.stats.outstanding_joins,
            &r.threads,
        ]));
        doc.push('\n');
    }
    doc
}

#[test]
fn parallel_sweep_output_is_byte_identical_to_sequential() {
    let seq = render(1);
    let par = render(4);
    assert!(
        seq == par,
        "jobs=4 changed the CSV document:\n--- jobs=1 ---\n{seq}\n--- jobs=4 ---\n{par}"
    );
    // And the document is not trivially empty.
    assert_eq!(seq.lines().count(), 1 + cells().len());
    assert!(seq.lines().nth(1).unwrap().starts_with("PFor,256,baseline,"));
}

/// Oversubscription (more jobs than cells) and a second identical pass (pool
/// reuse in a warm process) must also reproduce the document.
#[test]
fn oversubscribed_and_warm_passes_agree() {
    let first = render(32);
    let second = render(32);
    assert_eq!(first, render(1));
    assert_eq!(first, second, "warm segment pool changed results");
}
