//! Microbenchmarks for the host-side building blocks.
//!
//! These measure the *simulator's* own performance (how much host work one
//! simulated event costs) and the real computational kernels the
//! benchmarks execute (SHA-1, the LCS leaf DP). Virtual-time results — the
//! paper's tables and figures — come from the `fig*`/`table*` binaries,
//! not from here.
//!
//! Self-contained harness (no criterion: the workspace builds offline with
//! no registry deps): each benchmark runs a calibration pass to pick an
//! iteration count targeting ~50ms, then reports the best-of-5 mean
//! ns/iter. Invoke with `cargo bench -p dcs-bench` or run the binary
//! directly; pass a substring argument to filter benchmarks by name.

use std::hint::black_box;
use std::time::Instant;

use dcs_apps::lcs::leaf_kernel;
use dcs_apps::sha1::{sha1, sha1_child};
use dcs_apps::uts::{presets, serial_count};
use dcs_core::deque::{owner_pop, owner_push, thief_lock, thief_take};
use dcs_core::layout::SegLayout;
use dcs_core::policy::{Policy, RunConfig};
use dcs_core::prelude::*;
use dcs_core::util::Slab;
use dcs_core::world::QueueItem;
use dcs_sim::{profiles, Machine, MachineConfig, SimRng};

const TARGET_NS: u128 = 50_000_000; // ~50ms per measurement round
const ROUNDS: usize = 5;

/// Time `f` adaptively and print `name: <ns>/iter (n iters × rounds)`.
fn bench<R>(filter: &str, name: &str, mut f: impl FnMut() -> R) {
    if !name.contains(filter) {
        return;
    }
    // Calibrate: grow the iteration count until one round is long enough to
    // drown out timer noise.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed().as_nanos();
        if dt >= TARGET_NS / 4 || iters >= 1 << 30 {
            if dt < TARGET_NS {
                iters = (iters as u128 * TARGET_NS / dt.max(1)).max(1) as u64;
            }
            break;
        }
        iters *= 4;
    }
    let mut best = u128::MAX;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos());
    }
    let per = best as f64 / iters as f64;
    println!("{name:<28} {per:>12.1} ns/iter   ({iters} iters, best of {ROUNDS})");
}

fn bench_sha1(filter: &str) {
    let d = sha1(b"root");
    bench(filter, "sha1/child_derivation", || sha1_child(black_box(&d), black_box(7)));
    let long = vec![0xabu8; 4096];
    bench(filter, "sha1/bulk_4k", || sha1(black_box(&long)));
}

fn bench_lcs_kernel(filter: &str) {
    let n = 256usize;
    let mut rng = SimRng::new(1);
    let a: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
    let b_: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
    let top = vec![0u32; n + 1];
    let left = vec![0u32; n + 1];
    bench(filter, "lcs_kernel/block_256", || {
        leaf_kernel(black_box(&a), black_box(&b_), 0, 0, n, &top, &left)
    });
}

fn bench_deque(filter: &str) {
    let cfg = RunConfig::new(2, Policy::ChildFull);
    let lay = SegLayout::new(&cfg);
    let mk = || {
        let m = Machine::new(
            MachineConfig::new(2, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        (m, Slab::new())
    };
    fn item(i: u64) -> QueueItem {
        QueueItem::Child {
            f: |_, _| Effect::ret(0u64),
            arg: Value::U64(i),
            handle: ThreadHandle::single(dcs_sim::GlobalAddr::new(0, 8)),
        }
    }
    // Machine setup dominates a single push/pop, so batch many ops per
    // machine instead of criterion's iter_batched_ref.
    bench(filter, "deque/push_pop", || {
        let (mut m, mut items) = mk();
        for _ in 0..64 {
            owner_push(&mut m, &mut items, &lay, 0, item(1)).unwrap();
            black_box(owner_pop(&mut m, &mut items, &lay, 0).unwrap());
        }
    });
    bench(filter, "deque/steal", || {
        let (mut m, mut items) = mk();
        for _ in 0..64 {
            owner_push(&mut m, &mut items, &lay, 0, item(1)).unwrap();
            let (ok, _) = thief_lock(&mut m, &lay, 1, 0);
            assert!(ok);
            black_box(thief_take(&mut m, &mut items, &lay, 1, 0).unwrap());
        }
    });
}

fn bench_uts_serial(filter: &str) {
    let spec = presets::tiny();
    bench(filter, "uts/serial_tiny", || serial_count(black_box(&spec)));
}

fn bench_end_to_end_sim(filter: &str) {
    // Host cost of simulating one small fork-join run end-to-end.
    fn fib(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        let n = arg.as_u64();
        if n < 2 {
            return Effect::ret(n);
        }
        Effect::fork(
            fib,
            n - 1,
            frame(move |h, _| {
                let h = h.as_handle();
                Effect::call(
                    fib,
                    n - 2,
                    frame(move |b, _| {
                        let b = b.as_u64();
                        Effect::join(h, frame(move |a, _| Effect::ret(a.as_u64() + b)))
                    }),
                )
            }),
        )
    }
    bench(filter, "sim/fib16_p4_greedy", || {
        let cfg = RunConfig::new(4, Policy::ContGreedy)
            .with_profile(profiles::test_profile())
            .with_seg_bytes(64 << 20);
        run(cfg, Program::new(fib, 16u64))
    });
}

fn main() {
    // `cargo bench` passes --bench; ignore flags, keep the first bare arg as
    // a name filter.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    bench_sha1(&filter);
    bench_lcs_kernel(&filter);
    bench_deque(&filter);
    bench_uts_serial(&filter);
    bench_end_to_end_sim(&filter);
}
