//! Criterion microbenchmarks for the host-side building blocks.
//!
//! These measure the *simulator's* own performance (how much host work one
//! simulated event costs) and the real computational kernels the
//! benchmarks execute (SHA-1, the LCS leaf DP). Virtual-time results — the
//! paper's tables and figures — come from the `fig*`/`table*` binaries,
//! not from here.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use dcs_apps::lcs::leaf_kernel;
use dcs_apps::sha1::{sha1, sha1_child};
use dcs_apps::uts::{presets, serial_count};
use dcs_core::deque::{owner_pop, owner_push, thief_lock, thief_take};
use dcs_core::layout::SegLayout;
use dcs_core::policy::{Policy, RunConfig};
use dcs_core::prelude::*;
use dcs_core::util::Slab;
use dcs_core::world::QueueItem;
use dcs_sim::{profiles, Machine, MachineConfig, SimRng};

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    g.throughput(Throughput::Bytes(24));
    let d = sha1(b"root");
    g.bench_function("child_derivation", |b| {
        b.iter(|| sha1_child(black_box(&d), black_box(7)))
    });
    let long = vec![0xabu8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("bulk_4k", |b| b.iter(|| sha1(black_box(&long))));
    g.finish();
}

fn bench_lcs_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("lcs_kernel");
    let n = 256usize;
    let mut rng = SimRng::new(1);
    let a: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
    let b_: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
    let top = vec![0u32; n + 1];
    let left = vec![0u32; n + 1];
    g.throughput(Throughput::Elements((n * n) as u64));
    g.bench_function("block_256", |bch| {
        bch.iter(|| leaf_kernel(black_box(&a), black_box(&b_), 0, 0, n, &top, &left))
    });
    g.finish();
}

fn bench_deque(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque");
    let cfg = RunConfig::new(2, Policy::ChildFull);
    let lay = SegLayout::new(&cfg);
    let mk = || {
        let m = Machine::new(
            MachineConfig::new(2, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        (m, Slab::new())
    };
    fn item(i: u64) -> QueueItem {
        QueueItem::Child {
            f: |_, _| Effect::ret(0u64),
            arg: Value::U64(i),
            handle: ThreadHandle::single(dcs_sim::GlobalAddr::new(0, 8)),
        }
    }
    g.bench_function("push_pop", |b| {
        b.iter_batched_ref(
            mk,
            |(m, items)| {
                owner_push(m, items, &lay, 0, item(1)).unwrap();
                owner_pop(m, items, &lay, 0).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("steal", |b| {
        b.iter_batched_ref(
            mk,
            |(m, items)| {
                owner_push(m, items, &lay, 0, item(1)).unwrap();
                let (ok, _) = thief_lock(m, &lay, 1, 0);
                assert!(ok);
                thief_take(m, items, &lay, 1, 0)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_uts_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("uts");
    let spec = presets::tiny();
    let nodes = serial_count(&spec).nodes;
    g.throughput(Throughput::Elements(nodes));
    g.sample_size(10);
    g.bench_function("serial_tiny", |b| b.iter(|| serial_count(black_box(&spec))));
    g.finish();
}

fn bench_end_to_end_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    // Host cost of simulating one small fork-join run end-to-end.
    fn fib(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        let n = arg.as_u64();
        if n < 2 {
            return Effect::ret(n);
        }
        Effect::fork(
            fib,
            n - 1,
            frame(move |h, _| {
                let h = h.as_handle();
                Effect::call(
                    fib,
                    n - 2,
                    frame(move |b, _| {
                        let b = b.as_u64();
                        Effect::join(h, frame(move |a, _| Effect::ret(a.as_u64() + b)))
                    }),
                )
            }),
        )
    }
    g.bench_function("fib16_p4_greedy", |b| {
        b.iter(|| {
            let cfg = RunConfig::new(4, Policy::ContGreedy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20);
            run(cfg, Program::new(fib, 16u64))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha1,
    bench_lcs_kernel,
    bench_deque,
    bench_uts_serial,
    bench_end_to_end_sim
);
criterion_main!(benches);
