//! # dcs-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation section (see
//! DESIGN.md §5 for the experiment index):
//!
//! | binary          | reproduces |
//! |-----------------|------------|
//! | `fig6`          | Fig. 6 — PFor/RecPFor parallel efficiency across join/steal strategies |
//! | `fig6_protocols`| Fig. 6 companion — cas-lock vs. lock-free vs. fence-free steal protocols |
//! | `table2`        | Table II — join & steal statistics |
//! | `fig7`          | Fig. 7 — busy-worker / ready-join time series |
//! | `fig8`          | Fig. 8 — UTS throughput scaling vs. BoT runtimes (ITO-A) |
//! | `fig9`          | Fig. 9 — UTS throughput scaling (Wisteria-O) |
//! | `table3`        | Table III — LCS execution times |
//! | `fig12`         | Fig. 12 — LCS vs. greedy-scheduling-theorem bounds |
//! | `ablate_free`   | §III-B ablation — lock-queue vs. local collection |
//! | `ablate_join`   | Fig. 4 ablation — work-first fast-path hit rates |
//! | `ablate_uniaddr`| §II-D ablation — uni- vs. iso-address pinned memory |
//!
//! Every binary prints a human-readable table *and* writes a CSV under
//! `results/`. `DCS_QUICK=1` shrinks problem sizes for smoke runs;
//! `DCS_WORKERS=<n>` overrides the default worker counts.

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use dcs_sim::VTime;

pub mod sweep;

/// True when the harness should shrink workloads (CI / smoke runs).
pub fn quick() -> bool {
    std::env::var("DCS_QUICK").is_ok_and(|v| v != "0")
}

/// Default worker count for the fixed-P experiments, honouring
/// `DCS_WORKERS`.
pub fn workers_default(default: usize) -> usize {
    std::env::var("DCS_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Repetitions per configuration (the paper averages 100 runs of a
/// nondeterministic system; the simulator is deterministic given a seed, so
/// we average a few seeds instead), honouring `DCS_REPS`.
pub fn reps_default(default: usize) -> usize {
    std::env::var("DCS_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick() { 1 } else { default })
}

/// Mean of virtual times.
pub fn mean_vtime(xs: &[VTime]) -> VTime {
    assert!(!xs.is_empty());
    VTime::ns(xs.iter().map(|t| t.as_ns() as u128).sum::<u128>() as u64 / xs.len() as u64)
}

/// Mean of f64 samples.
pub fn mean_f64(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// A CSV sink under `results/`.
pub struct Csv {
    file: fs::File,
    path: String,
}

impl Csv {
    /// Create `results/<name>.csv` with a header row.
    pub fn create(name: &str, header: &str) -> Csv {
        fs::create_dir_all("results").expect("create results dir");
        let path = format!("results/{name}.csv");
        let mut file = fs::File::create(Path::new(&path)).expect("create csv");
        writeln!(file, "{header}").expect("write header");
        Csv { file, path }
    }

    pub fn row(&mut self, fields: &[&dyn Display]) {
        writeln!(self.file, "{}", csv_line(fields)).expect("write row");
    }

    pub fn path(&self) -> &str {
        &self.path
    }
}

/// Render one CSV row (no trailing newline). Shared by [`Csv`] and the
/// sweep-determinism tests, which compare rendered rows across job counts.
pub fn csv_line(fields: &[&dyn Display]) -> String {
    fields
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Format a throughput in Mnodes/s.
pub fn mnodes(nodes: u64, t: VTime) -> f64 {
    nodes as f64 / t.as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(mean_vtime(&[VTime::ns(10), VTime::ns(20)]), VTime::ns(15));
        assert!((mean_f64(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn csv_writes() {
        let mut csv = Csv::create("harness_selftest", "a,b");
        csv.row(&[&1, &"x"]);
        let content = std::fs::read_to_string(csv.path()).unwrap();
        assert_eq!(content, "a,b\n1,x\n");
        std::fs::remove_file(csv.path()).ok();
    }

    #[test]
    fn mnodes_math() {
        let t = VTime::secs(2);
        assert!((mnodes(4_000_000, t) - 2.0).abs() < 1e-9);
    }
}
