//! Host-parallel experiment sweeps.
//!
//! Every bench binary walks a configuration matrix and runs one simulation
//! per cell. Each simulation is single-threaded and a **pure function of its
//! configuration** (no global state, own RNG streams, virtual time), so
//! independent cells can run on different OS threads without changing any
//! result — the only observable difference is host wall-clock time.
//!
//! [`run_matrix`] is the one fan-out primitive: it executes `f` over every
//! config on a dependency-free scoped thread pool and reassembles the
//! results **in matrix order**. Callers therefore keep their rendering
//! (stdout tables, CSV rows) strictly sequential *after* the fan-out, which
//! makes the output byte-identical to a `--jobs 1` run — the property pinned
//! by `tests/sweep_determinism.rs`.
//!
//! Job-count selection: `--jobs N` on any bench binary (or `DCS_JOBS=N` in
//! the environment, for `run_all_experiments.sh`); absent means all
//! available cores. `--jobs 0` is rejected loudly rather than silently
//! meaning "sequential" or "all cores".

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use when the user did not say: all available
/// cores (1 if the count cannot be determined).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse a `--jobs` value. Zero is a configuration error, not a mode.
pub fn parse_jobs(v: &str) -> Result<usize, String> {
    let n: usize = v
        .parse()
        .map_err(|_| format!("bad --jobs value '{v}' (expected a positive integer)"))?;
    if n == 0 {
        return Err("--jobs must be >= 1 (0 jobs cannot run anything; use 1 for sequential)"
            .to_string());
    }
    Ok(n)
}

/// Resolve the job count for a bench binary from an argument vector plus the
/// `DCS_JOBS` environment variable (flag wins). Absent everywhere = all
/// cores.
pub fn jobs_from(args: &[String], env_jobs: Option<&str>) -> Result<usize, String> {
    let mut jobs: Option<usize> = match env_jobs {
        Some(v) => Some(parse_jobs(v).map_err(|e| format!("DCS_JOBS: {e}"))?),
        None => None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--jobs" | "-j" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--jobs needs a value".to_string())?;
                jobs = Some(parse_jobs(v)?);
            }
            other => return Err(format!("unknown flag '{other}' (bench bins take --jobs N)")),
        }
    }
    Ok(jobs.unwrap_or_else(available_jobs))
}

/// Job count for a bench `main`: parses `std::env::args` and `DCS_JOBS`,
/// exiting with a parse error on bad input.
pub fn jobs_or_exit() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let env = std::env::var("DCS_JOBS").ok();
    match jobs_from(&args, env.as_deref()) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Run `f` over every config, fanning the calls across up to `jobs` OS
/// threads, and return the results **in the order of `configs`**.
///
/// `f` receives `(index, &config)`. With `jobs = 1` (or a single config) no
/// thread is ever spawned — the calls run in order on the caller's thread,
/// which keeps stack traces and panic behaviour identical to the historical
/// sequential bins. With `jobs > 1` the cells are claimed from a shared
/// atomic cursor (dynamic scheduling: cheap cells do not hold up expensive
/// ones) and a panic in any cell propagates after the scope joins.
pub fn run_matrix<C, R, F>(configs: &[C], jobs: usize, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, &C) -> R + Sync,
{
    assert!(jobs >= 1, "run_matrix needs at least one job");
    if jobs == 1 || configs.len() <= 1 {
        return configs.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let threads = jobs.min(configs.len());
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(configs.len());
    slots.resize_with(configs.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut mine: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= configs.len() {
                        break;
                    }
                    mine.push((i, f(i, &configs[i])));
                }
                mine
            }));
        }
        for h in handles {
            // A panicked cell re-raises here, after every thread joined.
            for (i, r) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every cell claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_order_is_preserved() {
        let configs: Vec<u64> = (0..97).collect();
        let seq = run_matrix(&configs, 1, |i, &c| (i as u64) * 1000 + c * c);
        for jobs in [2, 3, 8] {
            let par = run_matrix(&configs, jobs, |i, &c| (i as u64) * 1000 + c * c);
            assert_eq!(seq, par, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_matrices() {
        let none: Vec<u32> = vec![];
        assert!(run_matrix(&none, 4, |_, &c| c).is_empty());
        assert_eq!(run_matrix(&[7u32], 4, |_, &c| c + 1), vec![8]);
    }

    #[test]
    fn jobs_parsing() {
        assert_eq!(parse_jobs("3"), Ok(3));
        assert!(parse_jobs("0").unwrap_err().contains(">= 1"));
        assert!(parse_jobs("x").unwrap_err().contains("bad --jobs"));

        let argv = |s: &str| -> Vec<String> {
            s.split_whitespace().map(|x| x.to_string()).collect()
        };
        assert_eq!(jobs_from(&argv("--jobs 5"), None), Ok(5));
        assert_eq!(jobs_from(&argv("-j 2"), None), Ok(2));
        assert_eq!(jobs_from(&argv(""), Some("7")), Ok(7));
        // The flag wins over the environment.
        assert_eq!(jobs_from(&argv("--jobs 4"), Some("7")), Ok(4));
        assert_eq!(jobs_from(&argv(""), None), Ok(available_jobs()));
        assert!(jobs_from(&argv("--jobs"), None).is_err(), "missing value");
        assert!(jobs_from(&argv("--jobs 0"), None).is_err(), "zero rejected");
        assert!(jobs_from(&argv("--frobnicate 1"), None).is_err());
        assert!(jobs_from(&argv(""), Some("0")).unwrap_err().contains("DCS_JOBS"));
    }

    #[test]
    fn panics_propagate_after_join() {
        let configs: Vec<u32> = (0..16).collect();
        let res = std::panic::catch_unwind(|| {
            run_matrix(&configs, 4, |_, &c| {
                if c == 9 {
                    panic!("cell 9 exploded");
                }
                c
            })
        });
        assert!(res.is_err());
    }
}
