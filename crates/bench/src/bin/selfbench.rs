//! Self-benchmark of the simulator host performance (not a paper figure).
//!
//! Measures, on a fixed workload set:
//!
//! * **actor steps/sec** — how fast the discrete-event engine grinds through
//!   scheduler steps on this host (exercises the event-queue fast path and
//!   the segment pool), and
//! * **runs/sec, sequential vs `--jobs N`** — the wall-clock effect of the
//!   host-parallel sweep harness, together with a check that both passes
//!   produced identical simulation results.
//!
//! Results land in `BENCH_simperf.json` (hand-rolled JSON; the workspace is
//! dependency-free) so CI can archive host-throughput history. All numbers
//! are *host* measurements — virtual-time results are asserted equal across
//! passes, never affected.

use std::fmt::Write as _;
use std::time::Instant;

use dcs_apps::lcs::{self, LcsParams};
use dcs_apps::pfor::{recpfor_program, PforParams};
use dcs_apps::uts::{self, presets};
use dcs_bench::{quick, sweep};
use dcs_core::prelude::*;

/// The fixed workload set: name + config + program constructor by index.
const WORKLOADS: [&str; 3] = ["uts", "recpfor", "lcs"];

fn build(name: &str, seed: u64) -> (RunConfig, Program) {
    let workers = 32;
    let cfg = RunConfig::new(workers, Policy::ContGreedy)
        .with_seed(seed)
        .with_seg_bytes(64 << 20);
    let program = match name {
        "uts" => uts::program(if quick() { presets::tiny() } else { presets::small() }),
        "recpfor" => {
            let n = if quick() { 1 << 7 } else { 1 << 10 };
            recpfor_program(PforParams::paper(n))
        }
        _ => {
            let n = if quick() { 1 << 9 } else { 1 << 12 };
            lcs::program(LcsParams::random(n, 256.min(n), 7))
        }
    };
    (cfg, program)
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']), "workload names are plain");
    s
}

/// Worker-scaling record: one (workload, W) cell of the headline sweep.
struct ScaleCell {
    workload: &'static str,
    workers: usize,
    steps: u64,
    host_ms: f64,
    steps_per_sec: f64,
    vtime_us: f64,
    peak_resident_bytes: u64,
}

/// Constant-size workloads on cubish 3-D meshes at growing worker counts.
/// The point is the *engine*, not the workload: with the O(active) paths
/// (indexed event queue, lazy mailboxes/segments, sparse runtime maps) the
/// host cost per step and the simulated peak resident bytes should both
/// stay ~O(touched state), not O(W) per step / O(W·seg) resident.
fn scaling_build(name: &str, workers: usize) -> (RunConfig, Program) {
    let mut cfg = RunConfig::new(workers, Policy::ContGreedy)
        .with_seed(0x5CA1E)
        .with_topology(Topology::cubish_mesh(workers, 48))
        .with_seg_bytes(2 << 20)
        .with_strict(false);
    // Small tree over many workers: shrink the per-worker fixed rings so
    // the simulated footprint reflects live state, not default capacity.
    cfg.deque_cap = 512;
    cfg.freeq_cap = 256;
    cfg.stack_slot = 8 << 10;
    let program = match name {
        "uts" => uts::program(presets::tiny()),
        // Scaled-down RecPFor: the paper instance's ~100 ms of work would
        // make the 100k-worker cell simulate billions of idle steps; a
        // sub-millisecond makespan keeps the cell about the same weight as
        // the UTS one while still exercising the loop-nest spawn shape.
        _ => recpfor_program(PforParams {
            n: 64,
            k: 2,
            m: VTime::us(2),
        }),
    };
    (cfg, program)
}

fn scaling_sweep() -> Vec<ScaleCell> {
    let scales: &[usize] = if quick() {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    println!("=== worker scaling: cubish_mesh(W, node = 48) ===");
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>14} {:>12} {:>14}",
        "workload", "workers", "steps", "host ms", "steps/s", "vtime", "peak bytes"
    );
    let mut out = Vec::new();
    for &w in scales {
        for name in ["uts", "recpfor"] {
            let (cfg, program) = scaling_build(name, w);
            let t0 = Instant::now();
            let r = run(cfg, program);
            let host = t0.elapsed();
            let host_ms = host.as_secs_f64() * 1e3;
            let sps = r.steps as f64 / host.as_secs_f64().max(1e-9);
            let peak = r.fabric.peak_resident_bytes;
            println!(
                "{:<10} {:>8} {:>12} {:>10.1} {:>14.0} {:>12} {:>14}",
                name,
                w,
                r.steps,
                host_ms,
                sps,
                r.elapsed.to_string(),
                peak
            );
            out.push(ScaleCell {
                workload: name,
                workers: w,
                steps: r.steps,
                host_ms,
                steps_per_sec: sps,
                vtime_us: r.elapsed.as_secs_f64() * 1e6,
                peak_resident_bytes: peak,
            });
        }
    }
    println!();
    out
}

fn main() {
    let jobs = sweep::jobs_or_exit();
    let host_cores = sweep::available_jobs();
    let reps = if quick() { 2 } else { 4 };

    println!("=== selfbench: simulator host throughput ===");
    println!("host cores: {host_cores}; sweep pass uses --jobs {jobs}\n");

    // Phase 0 (headline): worker-scaling sweep on cubish meshes.
    let scaling = scaling_sweep();

    // Phase 1: single-run engine throughput (actor steps per host second).
    println!(
        "{:<10} {:>12} {:>10} {:>14} {:>12}",
        "workload", "steps", "host ms", "steps/s", "vtime"
    );
    let mut singles = Vec::new();
    for name in WORKLOADS {
        let (cfg, program) = build(name, 0x5EED);
        let t0 = Instant::now();
        let r = run(cfg, program);
        let host = t0.elapsed();
        let host_ms = host.as_secs_f64() * 1e3;
        let sps = r.steps as f64 / host.as_secs_f64().max(1e-9);
        println!(
            "{:<10} {:>12} {:>10.1} {:>14.0} {:>12}",
            name,
            r.steps,
            host_ms,
            sps,
            r.elapsed.to_string()
        );
        singles.push((name, r.steps, host_ms, sps));
    }

    // Phase 2: the sweep harness, sequential vs parallel, same cell matrix.
    // Each pass returns the virtual results so we can assert the fan-out
    // changed nothing.
    let mut cells: Vec<(usize, u64)> = Vec::new();
    for (wi, _) in WORKLOADS.iter().enumerate() {
        for rep in 0..reps {
            cells.push((wi, 0x5EED + rep as u64));
        }
    }
    let pass = |jobs: usize| {
        let t0 = Instant::now();
        let results: Vec<(VTime, u64)> = sweep::run_matrix(&cells, jobs, |_, &(wi, seed)| {
            let (cfg, program) = build(WORKLOADS[wi], seed);
            let r = run(cfg, program);
            (r.elapsed, r.steps)
        });
        (t0.elapsed().as_secs_f64(), results)
    };
    let (seq_s, seq_results) = pass(1);
    let (par_s, par_results) = pass(jobs);
    let identical = seq_results == par_results;
    assert!(
        identical,
        "parallel sweep changed simulation results — determinism bug"
    );
    let runs = cells.len();
    let speedup = seq_s / par_s.max(1e-9);
    println!("\nsweep pass: {runs} runs");
    println!(
        "  sequential (--jobs 1): {:>8.2} s  ({:.2} runs/s)",
        seq_s,
        runs as f64 / seq_s.max(1e-9)
    );
    println!(
        "  parallel   (--jobs {jobs}): {:>8.2} s  ({:.2} runs/s)",
        par_s,
        runs as f64 / par_s.max(1e-9)
    );
    println!("  speedup: {speedup:.2}x; virtual results identical: {identical}");
    if jobs == 1 {
        println!("  (both passes sequential — pass --jobs N or set DCS_JOBS to fan out)");
    }

    // Hand-rolled JSON report.
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"host_cores\": {host_cores},");
    let _ = writeln!(j, "  \"jobs\": {jobs},");
    let _ = writeln!(j, "  \"quick\": {},", quick());
    j.push_str("  \"worker_scaling\": [\n");
    for (i, c) in scaling.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"workers\": {}, \"steps\": {}, \"host_ms\": {:.3}, \
             \"steps_per_sec\": {:.0}, \"vtime_us\": {:.3}, \"peak_resident_bytes\": {}}}{}",
            json_escape_free(c.workload),
            c.workers,
            c.steps,
            c.host_ms,
            c.steps_per_sec,
            c.vtime_us,
            c.peak_resident_bytes,
            if i + 1 < scaling.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"single_runs\": [\n");
    for (i, (name, steps, host_ms, sps)) in singles.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"steps\": {}, \"host_ms\": {:.3}, \"steps_per_sec\": {:.0}}}{}",
            json_escape_free(name),
            steps,
            host_ms,
            sps,
            if i + 1 < singles.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"sweep\": {\n");
    let _ = writeln!(j, "    \"runs\": {runs},");
    let _ = writeln!(j, "    \"seq_s\": {seq_s:.3},");
    let _ = writeln!(j, "    \"par_s\": {par_s:.3},");
    let _ = writeln!(j, "    \"speedup\": {speedup:.3},");
    let _ = writeln!(j, "    \"identical_output\": {identical}");
    j.push_str("  }\n");
    j.push_str("}\n");
    std::fs::write("BENCH_simperf.json", &j).expect("write BENCH_simperf.json");
    println!("\nJSON written to BENCH_simperf.json");
}
