//! Fig. 6 — parallel efficiency of PFor and RecPFor under five runtime
//! configurations, on both machine profiles.
//!
//! Paper setup: ITO-A with 576 cores / Wisteria-O with 1728 cores, K = 5,
//! M = 10 µs, N swept so the ideal execution time `T1/P` spans
//! ~10 ms … 10 s; 100-run averages. Here: P = 64 (override with
//! `DCS_WORKERS`), N swept over powers of two, seeds averaged.
//!
//! Configurations (left-to-right as in the figure's legend):
//!
//! * `baseline`   — continuation stealing, stalling join, lock-queue frees
//!   (original MassiveThreads/DM),
//! * `+localcol`  — baseline + local collection (§III-B),
//! * `greedy`     — local collection + greedy join (§III-A2; the paper's
//!   full configuration),
//! * `child-full` — child stealing, fully-fledged threads,
//! * `child-rtc`  — child stealing, run-to-completion threads.
//!
//! Expected shape (paper §V-A/V-B): local collection buys up to ~40% on
//! PFor; greedy join adds ~8% more on RecPFor only; continuation stealing
//! beats child stealing clearly on RecPFor (up to 1.3× vs Full, ~5× vs RtC
//! on Wisteria-O) while PFor shows little difference.

use dcs_apps::pfor::{pfor_program, recpfor_program, PforParams};
use dcs_bench::{mean_f64, quick, reps_default, sweep, workers_default, Csv};
use dcs_core::prelude::*;
use dcs_sim::MachineProfile;

struct Config {
    name: &'static str,
    policy: Policy,
    free: FreeStrategy,
}

const CONFIGS: [Config; 5] = [
    Config {
        name: "baseline",
        policy: Policy::ContStalling,
        free: FreeStrategy::LockQueue,
    },
    Config {
        name: "+localcol",
        policy: Policy::ContStalling,
        free: FreeStrategy::LocalCollection,
    },
    Config {
        name: "greedy",
        policy: Policy::ContGreedy,
        free: FreeStrategy::LocalCollection,
    },
    Config {
        name: "child-full",
        policy: Policy::ChildFull,
        free: FreeStrategy::LocalCollection,
    },
    Config {
        name: "child-rtc",
        policy: Policy::ChildRtc,
        free: FreeStrategy::LocalCollection,
    },
];

fn run_one(
    bench: &str,
    params: PforParams,
    cfg: &Config,
    profile: &MachineProfile,
    workers: usize,
    seed: u64,
) -> (VTime, VTime) {
    let rc = RunConfig::new(workers, cfg.policy)
        .with_profile(profile.clone())
        .with_free_strategy(cfg.free)
        .with_seed(seed)
        .with_seg_bytes(64 << 20);
    let (program, t1) = match bench {
        "PFor" => (pfor_program(params), params.pfor_t1(profile.compute_scale)),
        "RecPFor" => (
            recpfor_program(params),
            params.recpfor_t1(profile.compute_scale),
        ),
        _ => unreachable!(),
    };
    let report = run(rc, program);
    (report.elapsed, t1)
}

/// One simulation of the matrix: (machine, bench, N, config, seed rep).
struct Cell {
    machine: usize,
    bench: &'static str,
    n: u64,
    cfg: usize,
    rep: usize,
}

fn main() {
    let jobs = sweep::jobs_or_exit();
    let workers = workers_default(64);
    let reps = reps_default(3);
    let mut csv = Csv::create(
        "fig6",
        "machine,bench,config,n,ideal_ms,efficiency",
    );

    let machines = [profiles::itoa(), profiles::wisteria()];
    let pfor_sizes: &[u64] = if quick() {
        &[1 << 10, 1 << 12]
    } else {
        &[1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16]
    };
    let recpfor_sizes: &[u64] = if quick() {
        &[1 << 6, 1 << 8]
    } else {
        &[1 << 7, 1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12]
    };

    // Flatten the whole matrix (in render order), fan the runs out across
    // host threads, then render strictly sequentially from the results.
    let mut cells: Vec<Cell> = Vec::new();
    for (mi, _) in machines.iter().enumerate() {
        for (bench, sizes) in [("PFor", pfor_sizes), ("RecPFor", recpfor_sizes)] {
            for &n in sizes {
                for (ci, _) in CONFIGS.iter().enumerate() {
                    for rep in 0..reps {
                        cells.push(Cell { machine: mi, bench, n, cfg: ci, rep });
                    }
                }
            }
        }
    }
    let effs: Vec<f64> = sweep::run_matrix(&cells, jobs, |_, c| {
        let profile = &machines[c.machine];
        let params = PforParams::paper(c.n);
        let (elapsed, t1) = run_one(
            c.bench,
            params,
            &CONFIGS[c.cfg],
            profile,
            workers,
            0x5EED + c.rep as u64,
        );
        (t1 / workers as u64).as_ns() as f64 / elapsed.as_ns() as f64
    });

    let mut next = 0usize;
    for profile in &machines {
        for (bench, sizes) in [("PFor", pfor_sizes), ("RecPFor", recpfor_sizes)] {
            println!(
                "\n=== Fig. 6: {bench} on {} (P = {workers}, {} seed(s)) ===",
                profile.name, reps
            );
            print!("{:>12} {:>10}", "N", "ideal");
            for c in &CONFIGS {
                print!(" {:>11}", c.name);
            }
            println!();
            for &n in sizes {
                let params = PforParams::paper(n);
                let t1 = match bench {
                    "PFor" => params.pfor_t1(profile.compute_scale),
                    _ => params.recpfor_t1(profile.compute_scale),
                };
                let ideal = t1 / workers as u64;
                print!("{:>12} {:>10}", n, ideal.to_string());
                for c in &CONFIGS {
                    let eff = mean_f64(&effs[next..next + reps]);
                    next += reps;
                    print!(" {:>10.1}%", eff * 100.0);
                    csv.row(&[
                        &profile.name,
                        &bench,
                        &c.name,
                        &n,
                        &format!("{:.3}", ideal.as_ms_f64()),
                        &format!("{eff:.4}"),
                    ]);
                }
                println!();
            }
        }
    }
    assert_eq!(next, effs.len(), "render walked the whole matrix");
    println!("\nCSV written to {}", csv.path());
    println!("Paper shape: +localcol ≥ baseline (up to ~40% on PFor);");
    println!("greedy helps RecPFor only; child-rtc collapses on RecPFor.");
}
