//! Fig. 9 — UTS throughput of the continuation-stealing runtime on the
//! Wisteria-O profile (A64FX + Tofu-D), three tree sizes, larger worker
//! counts.
//!
//! Paper: up to 110,592 cores with 96.4% parallel efficiency on T1WL.
//! Here: up to 1024 workers on the scaled trees. The shape: the largest
//! tree keeps near-ideal efficiency to the top of the sweep; smaller trees
//! peel off as per-worker work shrinks toward the steal latency.

use dcs_apps::uts::{self, presets, serial_vtime};
use dcs_bench::{mnodes, quick, sweep, Csv};
use dcs_core::prelude::*;

fn main() {
    let jobs = sweep::jobs_or_exit();
    // (tree, P values): bigger trees carry the top of the sweep so the
    // per-worker work stays meaningful, mirroring the paper's weak-ish
    // scaling across tree sizes.
    let full_ps: &[usize] = &[16, 32, 64, 128, 256, 512, 1024];
    let top_ps: &[usize] = &[256, 512, 1024];
    let trees: Vec<(&str, _, &[usize])> = if quick() {
        vec![("tiny", presets::tiny(), &[1usize, 8][..])]
    } else {
        vec![
            ("T1L~", presets::small(), full_ps),
            ("T1XXL~", presets::medium(), full_ps),
            ("T1WL~", presets::large(), full_ps),
            ("T1WL+", presets::huge(), top_ps),
        ]
    };
    let profile = profiles::wisteria();
    let mut csv = Csv::create("fig9", "tree,nodes,p,throughput_mnodes_s,efficiency");

    // One cell per run: the paper-style P=1 self-baseline first, then the
    // sweep points; every cell is an independent simulation.
    let infos: Vec<_> = trees.iter().map(|(_, spec, _)| uts::serial_count(spec)).collect();
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for (ti, (_, _, ps)) in trees.iter().enumerate() {
        cells.push((ti, 1)); // the efficiency baseline
        for &p in ps.iter() {
            cells.push((ti, p));
        }
    }
    let elapsed: Vec<VTime> = sweep::run_matrix(&cells, jobs, |_, &(ti, p)| {
        let r = run(
            RunConfig::new(p, Policy::ContGreedy)
                .with_profile(profile.clone())
                .with_seg_bytes(64 << 20),
            uts::program(trees[ti].1.clone()),
        );
        assert_eq!(r.result.as_u64(), infos[ti].nodes);
        r.elapsed
    });

    let mut next = 0usize;
    for (ti, (name, _, ps)) in trees.iter().enumerate() {
        let info = &infos[ti];
        let spec = &trees[ti].1;
        let t_serial = serial_vtime(spec, profile.compute_scale);
        let serial_tp = mnodes(info.nodes, t_serial);
        println!(
            "\n=== Fig. 9: UTS {name} ({} nodes) on {} ===",
            info.nodes, profile.name
        );
        // The paper computes parallel efficiency against the *single-core
        // execution time of the runtime itself* ("96.4% parallel efficiency
        // calculated with a single-core execution time"), not serial DFS.
        let single_elapsed = elapsed[next];
        next += 1;
        let single_tp = mnodes(info.nodes, single_elapsed);
        println!(
            "serial DFS: {} ({serial_tp:.2} Mn/s); runtime at P=1: {} ({single_tp:.2} Mn/s)",
            t_serial, single_elapsed
        );
        println!("{:>6} {:>14} {:>12}", "P", "throughput", "efficiency");
        for &p in ps.iter() {
            let tp = mnodes(info.nodes, elapsed[next]);
            next += 1;
            let eff = tp / (single_tp * p as f64);
            println!("{:>6} {:>11.2} Mn {:>11.1}%", p, tp, eff * 100.0);
            csv.row(&[name, &info.nodes, &p, &format!("{tp:.3}"), &format!("{eff:.4}")]);
        }
    }
    assert_eq!(next, elapsed.len(), "render walked the whole matrix");
    println!("\nCSV written to {}", csv.path());
    println!("Paper: 96.4% parallel efficiency at the top of the sweep for the");
    println!("largest tree — the headline scaling claim.");
}
