//! Ablation (Fig. 4) — how often each DIE/JOIN path executes under greedy
//! join, across the benchmarks.
//!
//! The work-first fast path (pop the parent before racing) is what makes
//! the greedy join affordable: it resolves the overwhelming majority of
//! joins without any RDMA atomic. This ablation counts, per benchmark:
//!
//! * `die fast`   — parent popped, plain flag write (no atomic),
//! * `die won`    — atomic race won by the producer (joiner not suspended),
//! * `die lost`   — atomic race lost: the producer migrates and resumes the
//!   suspended joiner (the §III-A2 migration-at-join capability),
//! * `join fast`  — joins satisfied on first flag read.

use dcs_apps::lcs::{self, LcsParams};
use dcs_apps::pfor::{recpfor_program, PforParams};
use dcs_apps::uts::{self, presets};
use dcs_bench::{quick, sweep, workers_default, Csv};
use dcs_core::prelude::*;

fn main() {
    let jobs = sweep::jobs_or_exit();
    let workers = workers_default(32);
    let mut csv = Csv::create(
        "ablate_join",
        "bench,threads,die_fast,die_won,die_lost,join_fast,outstanding",
    );

    println!("=== Fig. 4 ablation: greedy DIE/JOIN path frequencies (P = {workers}) ===\n");
    println!(
        "{:<10} {:>9} {:>9} {:>8} {:>8} {:>10} {:>11} {:>10}",
        "bench", "threads", "die fast", "die won", "die lost", "join fast", "outstanding", "fast %"
    );

    let benches = ["RecPFor", "UTS", "LCS"];
    let reports = sweep::run_matrix(&benches, jobs, |_, &name| {
        let cfg = RunConfig::new(workers, Policy::ContGreedy).with_seg_bytes(64 << 20);
        let program = match name {
            "RecPFor" => {
                let n = if quick() { 1 << 7 } else { 1 << 10 };
                recpfor_program(PforParams::paper(n))
            }
            "UTS" => {
                let spec = if quick() { presets::tiny() } else { presets::small() };
                uts::program(spec)
            }
            _ => {
                let n = if quick() { 1 << 10 } else { 1 << 13 };
                lcs::program(LcsParams::random(n, 256.min(n), 7))
            }
        };
        run(cfg, program)
    });

    for (name, r) in benches.iter().zip(&reports) {
        let s = &r.stats;
        let denom = (s.die_fast + s.die_won + s.die_lost).max(1);
        let fast_pct = 100.0 * s.die_fast as f64 / denom as f64;
        println!(
            "{:<10} {:>9} {:>9} {:>8} {:>8} {:>10} {:>11} {:>9.1}%",
            name,
            r.threads,
            s.die_fast,
            s.die_won,
            s.die_lost,
            s.joins_fast,
            s.outstanding_joins,
            fast_pct
        );
        csv.row(&[
            name,
            &r.threads,
            &s.die_fast,
            &s.die_won,
            &s.die_lost,
            &s.joins_fast,
            &s.outstanding_joins,
        ]);
    }
    println!("\nCSV written to {}", csv.path());
    println!("Expected: die-fast dominates (work-first principle); die-lost —");
    println!("the migration path stalling join lacks — appears mainly in the");
    println!("future-heavy LCS.");
}
