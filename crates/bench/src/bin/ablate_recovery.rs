//! Ablation — what fail-stop recovery costs, armed and firing.
//!
//! Two questions, answered for the child run-to-completion fork-join
//! runtime and the one-sided bag-of-tasks runtime (the two that can
//! re-execute lost work):
//!
//! 1. **Armed overhead.** With recovery armed (`recover=on`: steal-lineage
//!    records, lease-registry reads, transfer counting) but no kill ever
//!    firing, how much simulated time does the bookkeeping add over the
//!    completely unarmed run? The acceptance bar is ≤ 2% — asserted here,
//!    not just reported.
//! 2. **Recovery latency.** With worker 1 fail-stopped at 25% / 50% / 75%
//!    of the healthy makespan, how long does the run take to detect the
//!    death (lease expiry), replay the lost subtrees, and still produce
//!    the exact fault-free answer? Every killed run asserts the serial
//!    node count — a kill may only cost time, never nodes.

use dcs_apps::uts::{self, presets};
use dcs_bench::{mnodes, quick, sweep, workers_default, Csv};
use dcs_bot::onesided;
use dcs_core::prelude::*;
use dcs_sim::VTime;

/// Lease shorter than the default 200µs so detection latency does not
/// dwarf replay latency at the bench's run lengths; still long enough to
/// be realistic against the itoa heartbeat period.
const LEASE: VTime = VTime::us(50);

#[derive(Clone, Copy, PartialEq)]
enum Runtime {
    ChildRtc,
    BotOnesided,
}

#[derive(Clone, Copy)]
enum Scenario {
    /// No fault plan at all: the recovery machinery is compiled out.
    Unarmed,
    /// `recover=on`: lineage + leases + transfer counting run, nothing dies.
    Armed,
    /// Worker 1 fail-stops at this fraction (in percent) of the healthy
    /// makespan.
    KillAt(u64),
}

impl Scenario {
    fn label(&self) -> String {
        match self {
            Scenario::Unarmed => "unarmed".into(),
            Scenario::Armed => "armed".into(),
            Scenario::KillAt(pct) => format!("kill@{pct}%"),
        }
    }

    fn plan(&self, healthy: VTime) -> FaultPlan {
        let mut plan = match self {
            Scenario::Unarmed => return FaultPlan::none(),
            Scenario::Armed => FaultPlan::none().with_recovery(),
            Scenario::KillAt(pct) => {
                FaultPlan::none().with_kill(1, healthy.scale(*pct as f64 / 100.0))
            }
        };
        plan.lease = LEASE;
        plan
    }
}

/// What one cell reports: (elapsed, tasks lost, tasks re-executed).
type Cell = (VTime, u64, u64);

fn main() {
    let jobs = sweep::jobs_or_exit();
    let spec = if quick() { presets::tiny() } else { presets::small() };
    let p = workers_default(if quick() { 8 } else { 32 });
    let info = uts::serial_count(&spec);
    let profile = profiles::itoa();
    let scenarios = [
        Scenario::Unarmed,
        Scenario::Armed,
        Scenario::KillAt(25),
        Scenario::KillAt(50),
        Scenario::KillAt(75),
    ];

    println!(
        "=== fail-stop recovery ablation (UTS {} nodes, P = {p}, {}, lease {LEASE}) ===\n",
        info.nodes, profile.name
    );

    // Healthy baselines first: kill times are fractions of these, so the
    // sweep is deterministic for any --jobs value.
    let rtc_cfg = |plan: FaultPlan| {
        RunConfig::new(p, Policy::ChildRtc)
            .with_profile(profile.clone())
            .with_seg_bytes(64 << 20)
            .with_fault_plan(plan)
    };
    let rtc_healthy = run(rtc_cfg(FaultPlan::none()), uts::program(spec.clone())).elapsed;
    let bot_healthy = onesided::run_uts_faulty(
        &spec,
        p,
        profile.clone(),
        1,
        onesided::StealAmount::Half,
        FaultPlan::none(),
    )
    .elapsed;

    let mut cells: Vec<(Runtime, usize)> = Vec::new();
    for rt in [Runtime::ChildRtc, Runtime::BotOnesided] {
        for si in 0..scenarios.len() {
            cells.push((rt, si));
        }
    }
    let results: Vec<Cell> = sweep::run_matrix(&cells, jobs, |_, &(rt, si)| {
        let sc = scenarios[si];
        match rt {
            Runtime::ChildRtc => {
                let plan = sc.plan(rtc_healthy);
                let r = run(rtc_cfg(plan), uts::program(spec.clone()));
                assert!(
                    r.outcome.is_complete(),
                    "ChildRtc {}: losing worker 1 is recoverable",
                    sc.label()
                );
                assert_eq!(
                    r.result.as_u64(),
                    info.nodes,
                    "ChildRtc {}: node count must survive the kill",
                    sc.label()
                );
                (r.elapsed, r.stats.tasks_lost, r.stats.tasks_replayed)
            }
            Runtime::BotOnesided => {
                let plan = sc.plan(bot_healthy);
                let r = onesided::run_uts_faulty(
                    &spec,
                    p,
                    profile.clone(),
                    1,
                    onesided::StealAmount::Half,
                    plan,
                );
                assert_eq!(
                    r.nodes,
                    info.nodes,
                    "one-sided BoT {}: node count must survive the kill",
                    sc.label()
                );
                (r.elapsed, r.lost_tasks, r.reexec_tasks)
            }
        }
    });

    let mut csv = Csv::create(
        "ablate_recovery",
        "runtime,scenario,p,elapsed_ns,throughput_mnodes_s,tasks_lost,tasks_replayed,slowdown",
    );
    println!(
        "{:<14} {:>9} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "runtime", "scenario", "elapsed", "thr(Mn/s)", "lost", "replayed", "slowdown"
    );

    let mut next = 0usize;
    for rt in [Runtime::ChildRtc, Runtime::BotOnesided] {
        let name = match rt {
            Runtime::ChildRtc => "child-rtc",
            Runtime::BotOnesided => "bot-onesided",
        };
        let mut baseline: Option<f64> = None;
        for sc in &scenarios {
            let (elapsed, lost, replayed) = results[next];
            next += 1;
            let t = elapsed.as_ns() as f64;
            let slowdown = t / *baseline.get_or_insert(t);
            if matches!(sc, Scenario::Armed) {
                // The acceptance bar: arming the machinery without a kill
                // costs at most 2% simulated time.
                assert!(
                    slowdown <= 1.02,
                    "{name}: armed-but-idle recovery costs {:.2}% (> 2% budget)",
                    (slowdown - 1.0) * 100.0
                );
            }
            let tp = mnodes(info.nodes, elapsed);
            println!(
                "{:<14} {:>9} {:>12} {:>10.2} {:>10} {:>10} {:>8.2}x",
                name,
                sc.label(),
                elapsed.to_string(),
                tp,
                lost,
                replayed,
                slowdown
            );
            csv.row(&[
                &name,
                &sc.label(),
                &p,
                &elapsed.as_ns(),
                &format!("{tp:.3}"),
                &lost,
                &replayed,
                &format!("{slowdown:.3}"),
            ]);
        }
    }
    assert_eq!(next, results.len(), "render walked the whole matrix");

    println!("\nCSV written to {}", csv.path());
    println!("Expected shape: armed == unarmed to within noise (the ≤2% assert);");
    println!("killed runs pay roughly lease expiry + lost-subtree re-execution,");
    println!("growing with how late the kill lands — and never lose a node.");
}
