//! Ablation — what fail-stop recovery costs, armed and firing.
//!
//! Two questions, answered for every runtime that can re-execute lost
//! work: the child run-to-completion fork-join runtime, both
//! continuation-stealing runtimes (greedy and stalling, recoverable via
//! the continuation-lineage log), and the one-sided bag-of-tasks runtime:
//!
//! 1. **Armed overhead.** With recovery armed (`recover=on`: steal-lineage
//!    records, lease-registry reads, transfer counting, buddy header
//!    mirroring for the cont policies) but no kill ever firing, how much
//!    simulated time does the bookkeeping add over the completely unarmed
//!    run? The acceptance bar is ≤ 2% for the child/BoT runtimes and
//!    ≤ 3% for the continuation policies (which also pay the checkpoint
//!    put on every steal) — asserted here, not just reported.
//! 2. **Recovery latency.** With worker 1 fail-stopped at 25% / 50% / 75%
//!    of the healthy makespan, how long does the run take to detect the
//!    death (lease expiry), replay the lost subtrees, and still produce
//!    the exact fault-free answer? Every killed run asserts the serial
//!    node count — a kill may only cost time, never nodes. The paid
//!    latency (killed elapsed minus the unarmed baseline) is reported as
//!    its own column.

use dcs_apps::uts::{self, presets};
use dcs_bench::{mnodes, quick, sweep, workers_default, Csv};
use dcs_bot::onesided;
use dcs_core::prelude::*;
use dcs_sim::VTime;

/// Lease shorter than the default 200µs so detection latency does not
/// dwarf replay latency at the bench's run lengths; still long enough to
/// be realistic against the itoa heartbeat period.
const LEASE: VTime = VTime::us(50);

#[derive(Clone, Copy, PartialEq)]
enum Runtime {
    ChildRtc,
    ContGreedy,
    ContStalling,
    BotOnesided,
}

impl Runtime {
    const ALL: [Runtime; 4] = [
        Runtime::ChildRtc,
        Runtime::ContGreedy,
        Runtime::ContStalling,
        Runtime::BotOnesided,
    ];

    fn name(&self) -> &'static str {
        match self {
            Runtime::ChildRtc => "child-rtc",
            Runtime::ContGreedy => "cont-greedy",
            Runtime::ContStalling => "cont-stalling",
            Runtime::BotOnesided => "bot-onesided",
        }
    }

    fn policy(&self) -> Option<Policy> {
        match self {
            Runtime::ChildRtc => Some(Policy::ChildRtc),
            Runtime::ContGreedy => Some(Policy::ContGreedy),
            Runtime::ContStalling => Some(Policy::ContStalling),
            Runtime::BotOnesided => None,
        }
    }

    /// Armed-but-idle slowdown budget. The continuation policies carry the
    /// lineage log *and* the buddy checkpoint put per steal, so they get a
    /// slightly wider (but still asserted) bar.
    fn armed_budget(&self) -> f64 {
        match self {
            Runtime::ContGreedy | Runtime::ContStalling => 1.03,
            _ => 1.02,
        }
    }
}

#[derive(Clone, Copy)]
enum Scenario {
    /// No fault plan at all: the recovery machinery is compiled out.
    Unarmed,
    /// `recover=on`: lineage + leases + transfer counting run, nothing dies.
    Armed,
    /// Worker 1 fail-stops at this fraction (in percent) of the healthy
    /// makespan.
    KillAt(u64),
}

impl Scenario {
    fn label(&self) -> String {
        match self {
            Scenario::Unarmed => "unarmed".into(),
            Scenario::Armed => "armed".into(),
            Scenario::KillAt(pct) => format!("kill@{pct}%"),
        }
    }

    fn plan(&self, healthy: VTime) -> FaultPlan {
        let mut plan = match self {
            Scenario::Unarmed => return FaultPlan::none(),
            Scenario::Armed => FaultPlan::none().with_recovery(),
            Scenario::KillAt(pct) => {
                FaultPlan::none().with_kill(1, healthy.scale(*pct as f64 / 100.0))
            }
        };
        plan.lease = LEASE;
        plan
    }
}

/// What one cell reports: (elapsed, tasks lost, tasks re-executed).
type Cell = (VTime, u64, u64);

fn main() {
    let jobs = sweep::jobs_or_exit();
    let spec = if quick() { presets::tiny() } else { presets::small() };
    let p = workers_default(if quick() { 8 } else { 32 });
    let info = uts::serial_count(&spec);
    let profile = profiles::itoa();
    let scenarios = [
        Scenario::Unarmed,
        Scenario::Armed,
        Scenario::KillAt(25),
        Scenario::KillAt(50),
        Scenario::KillAt(75),
    ];

    println!(
        "=== fail-stop recovery ablation (UTS {} nodes, P = {p}, {}, lease {LEASE}) ===\n",
        info.nodes, profile.name
    );

    // Healthy baselines first: kill times are fractions of these, so the
    // sweep is deterministic for any --jobs value.
    let cfg = |policy: Policy, plan: FaultPlan| {
        RunConfig::new(p, policy)
            .with_profile(profile.clone())
            .with_seg_bytes(64 << 20)
            .with_fault_plan(plan)
    };
    let healthy: Vec<VTime> = Runtime::ALL
        .iter()
        .map(|rt| match rt.policy() {
            Some(policy) => run(cfg(policy, FaultPlan::none()), uts::program(spec.clone())).elapsed,
            None => {
                onesided::run_uts_faulty(
                    &spec,
                    p,
                    profile.clone(),
                    1,
                    onesided::StealAmount::Half,
                    FaultPlan::none(),
                )
                .elapsed
            }
        })
        .collect();

    let mut cells: Vec<(usize, usize)> = Vec::new();
    for ri in 0..Runtime::ALL.len() {
        for si in 0..scenarios.len() {
            cells.push((ri, si));
        }
    }
    let results: Vec<Cell> = sweep::run_matrix(&cells, jobs, |_, &(ri, si)| {
        let rt = Runtime::ALL[ri];
        let sc = scenarios[si];
        match rt.policy() {
            Some(policy) => {
                let plan = sc.plan(healthy[ri]);
                let r = run(cfg(policy, plan), uts::program(spec.clone()));
                assert!(
                    r.outcome.is_complete(),
                    "{} {}: losing worker 1 is recoverable",
                    rt.name(),
                    sc.label()
                );
                assert_eq!(
                    r.result.as_u64(),
                    info.nodes,
                    "{} {}: node count must survive the kill",
                    rt.name(),
                    sc.label()
                );
                (r.elapsed, r.stats.tasks_lost, r.stats.tasks_replayed)
            }
            None => {
                let plan = sc.plan(healthy[ri]);
                let r = onesided::run_uts_faulty(
                    &spec,
                    p,
                    profile.clone(),
                    1,
                    onesided::StealAmount::Half,
                    plan,
                );
                assert_eq!(
                    r.nodes,
                    info.nodes,
                    "one-sided BoT {}: node count must survive the kill",
                    sc.label()
                );
                (r.elapsed, r.lost_tasks, r.reexec_tasks)
            }
        }
    });

    let mut csv = Csv::create(
        "ablate_recovery",
        "runtime,scenario,p,elapsed_ns,throughput_mnodes_s,tasks_lost,tasks_replayed,slowdown,recovery_ns",
    );
    println!(
        "{:<14} {:>9} {:>12} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "runtime", "scenario", "elapsed", "thr(Mn/s)", "lost", "replayed", "slowdown", "recovery"
    );

    let mut next = 0usize;
    for rt in Runtime::ALL {
        let name = rt.name();
        let mut baseline: Option<f64> = None;
        for sc in &scenarios {
            let (elapsed, lost, replayed) = results[next];
            next += 1;
            let t = elapsed.as_ns() as f64;
            let slowdown = t / *baseline.get_or_insert(t);
            if matches!(sc, Scenario::Armed) {
                // The acceptance bar: arming the machinery without a kill
                // costs at most 2% (3% for cont policies) simulated time.
                let budget = rt.armed_budget();
                assert!(
                    slowdown <= budget,
                    "{name}: armed-but-idle recovery costs {:.2}% (> {:.0}% budget)",
                    (slowdown - 1.0) * 100.0,
                    (budget - 1.0) * 100.0
                );
            }
            // Recovery latency actually paid: detection (lease expiry) +
            // replay, over the unarmed baseline of the same runtime.
            let recovery = match sc {
                Scenario::KillAt(_) => {
                    VTime::ns(elapsed.as_ns().saturating_sub(baseline.unwrap() as u64))
                }
                _ => VTime::ZERO,
            };
            let tp = mnodes(info.nodes, elapsed);
            println!(
                "{:<14} {:>9} {:>12} {:>10.2} {:>10} {:>10} {:>8.2}x {:>12}",
                name,
                sc.label(),
                elapsed.to_string(),
                tp,
                lost,
                replayed,
                slowdown,
                if recovery == VTime::ZERO { "-".into() } else { recovery.to_string() },
            );
            csv.row(&[
                &name,
                &sc.label(),
                &p,
                &elapsed.as_ns(),
                &format!("{tp:.3}"),
                &lost,
                &replayed,
                &format!("{slowdown:.3}"),
                &recovery.as_ns(),
            ]);
        }
    }
    assert_eq!(next, results.len(), "render walked the whole matrix");

    println!("\nCSV written to {}", csv.path());
    println!("Expected shape: armed == unarmed to within noise (the ≤2%/≤3% assert);");
    println!("killed runs pay roughly lease expiry + lost-subtree re-execution,");
    println!("growing with how late the kill lands — and never lose a node.");
}
