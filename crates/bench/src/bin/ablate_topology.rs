//! Ablation (§VI future work) — topology-aware victim selection over
//! RDMA-based continuation stealing.
//!
//! The paper evaluates uniform random stealing only and explicitly leaves
//! topology-aware victim selection over RDMA as future interest. This
//! ablation runs UTS on a hierarchical machine (nodes of 32 workers with
//! 0.25× intra-node latency, mesh-connected like Wisteria-O) under three
//! victim policies and reports throughput, steal latency and the
//! local-steal fraction's effect.

use dcs_apps::uts::{self, presets};
use dcs_bench::{mnodes, quick, sweep, Csv};
use dcs_core::prelude::*;

fn main() {
    let jobs = sweep::jobs_or_exit();
    let spec = if quick() { presets::tiny() } else { presets::medium() };
    let info = uts::serial_count(&spec);
    let workers: usize = if quick() { 16 } else { 256 };
    let node_size = if quick() { 4 } else { 32 };
    let mut csv = Csv::create(
        "ablate_topology",
        "topology,victim,throughput_mnodes_s,avg_steal_latency_us,steals_ok,steals_failed",
    );

    let topologies: Vec<(&str, Topology)> = vec![
        ("flat", Topology::Flat),
        (
            "hier",
            Topology::Hierarchical {
                node_size,
                intra_factor: 0.25,
            },
        ),
        ("mesh3d", Topology::cubish_mesh(workers, node_size)),
    ];
    let victims = [
        VictimPolicy::Uniform,
        VictimPolicy::Locality { p_local: 0.8 },
        VictimPolicy::Hierarchical { local_tries: 2 },
    ];

    println!(
        "=== §VI ablation: topology-aware stealing, UTS ({} nodes, P = {workers}, node = {node_size}) ===\n",
        info.nodes
    );
    println!(
        "{:<8} {:<14} {:>14} {:>14} {:>10} {:>10}",
        "topology", "victim", "throughput", "steal lat", "#steal", "#failed"
    );
    let mut cells: Vec<(usize, VictimPolicy)> = Vec::new();
    for (ti, _) in topologies.iter().enumerate() {
        for v in victims {
            cells.push((ti, v));
        }
    }
    let reports = sweep::run_matrix(&cells, jobs, |_, &(ti, v)| {
        let cfg = RunConfig::new(workers, Policy::ContGreedy)
            .with_topology(topologies[ti].1.clone())
            .with_victim(v)
            .with_seg_bytes(64 << 20);
        let r = run(cfg, uts::program(spec.clone()));
        assert_eq!(r.result.as_u64(), info.nodes);
        r
    });

    let mut next = 0usize;
    for (tname, _) in &topologies {
        for v in victims {
            let r = &reports[next];
            next += 1;
            let tp = mnodes(info.nodes, r.elapsed);
            println!(
                "{:<8} {:<14} {:>11.2} Mn {:>12.1}us {:>10} {:>10}",
                tname,
                v.label(),
                tp,
                r.stats.avg_steal_latency().as_us_f64(),
                r.stats.steals_ok,
                r.stats.steals_failed
            );
            csv.row(&[
                tname,
                &v.label(),
                &format!("{tp:.3}"),
                &format!("{:.2}", r.stats.avg_steal_latency().as_us_f64()),
                &r.stats.steals_ok,
                &r.stats.steals_failed,
            ]);
        }
    }
    assert_eq!(next, reports.len(), "render walked the whole matrix");
    println!("\nCSV written to {}", csv.path());
    println!("Expected: on flat machines the policies tie (locality can only");
    println!("hurt victim coverage); on hierarchical/mesh machines locality-");
    println!("aware selection cuts average steal latency.");
}
