//! Ablation (§III-B) — remote-object freeing: lock-queue baseline versus
//! local collection.
//!
//! Measures both the end-to-end effect (RecPFor execution time) and the
//! mechanism (remote atomic/put counts per thread spawned): the lock-queue
//! protocol costs four round trips per remote free, local collection one
//! non-blocking put.

use dcs_apps::pfor::{recpfor_program, PforParams};
use dcs_bench::{quick, sweep, workers_default, Csv};
use dcs_core::prelude::*;

fn main() {
    let jobs = sweep::jobs_or_exit();
    let workers = workers_default(64);
    let n = if quick() { 1 << 8 } else { 1 << 11 };
    let params = PforParams::paper(n);
    let mut csv = Csv::create(
        "ablate_free",
        "strategy,exec_ms,remote_amos,remote_puts,remote_gets,amos_per_thread",
    );

    println!(
        "=== §III-B ablation: remote freeing, RecPFor N=2^{} (P = {workers}) ===\n",
        n.ilog2()
    );
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "strategy", "time", "remote amo", "remote put", "remote get", "amo/thread"
    );
    let strategies = [FreeStrategy::LockQueue, FreeStrategy::LocalCollection];
    let reports = sweep::run_matrix(&strategies, jobs, |_, &strategy| {
        let cfg = RunConfig::new(workers, Policy::ContStalling)
            .with_free_strategy(strategy)
            .with_seg_bytes(64 << 20);
        run(cfg, recpfor_program(params))
    });
    for (strategy, r) in strategies.iter().zip(&reports) {
        let f = &r.fabric;
        let apt = f.remote_amos as f64 / r.threads as f64;
        println!(
            "{:<18} {:>10} {:>12} {:>12} {:>12} {:>14.2}",
            strategy.label(),
            r.elapsed.to_string(),
            f.remote_amos,
            f.remote_puts,
            f.remote_gets,
            apt
        );
        csv.row(&[
            &strategy.label(),
            &format!("{:.3}", r.elapsed.as_ms_f64()),
            &f.remote_amos,
            &f.remote_puts,
            &f.remote_gets,
            &format!("{apt:.3}"),
        ]);
    }
    println!("\nCSV written to {}", csv.path());
    println!("Paper: local collection improved PFor by up to 40% and RecPFor by");
    println!("27% over the lock-queue baseline by eliminating the 4-round-trip");
    println!("remote free.");
}
