//! Ablation (§II-D) — address-space consumption: uni-address versus
//! iso-address, **both actually executed**, plus the uni-address
//! migration-conflict rate.
//!
//! The iso-address scheme (PM2/Charm++/Adaptive MPI) assigns every thread
//! stack a globally unique pinned range, so pinned memory grows with the
//! number of *live* threads across the whole job; the uni-address scheme
//! reuses addresses and is bounded by per-worker nesting depth (plus the
//! evacuation region for suspended threads). With RDMA the pinned footprint
//! is what matters — it must be registered up front.
//!
//! Both schemes run the same workloads under the same scheduler; execution
//! times are expected to be nearly identical (the schemes differ in memory,
//! not scheduling), which this ablation also verifies.

use dcs_apps::lcs::{self, LcsParams};
use dcs_apps::pfor::{recpfor_program, PforParams};
use dcs_apps::uts::{self, presets};
use dcs_bench::{quick, sweep, workers_default, Csv};
use dcs_core::prelude::*;

/// Programs are built by name inside each job — closures returning
/// `Program` are not `Sync`, an index is.
fn mk_program(name: &str) -> Program {
    match name {
        "RecPFor" => {
            let n = if quick() { 1u64 << 7 } else { 1 << 10 };
            recpfor_program(PforParams::paper(n))
        }
        "UTS" => uts::program(if quick() { presets::tiny() } else { presets::small() }),
        _ => {
            let n = if quick() { 1u64 << 10 } else { 1 << 12 };
            lcs::program(LcsParams::random(n, 256.min(n), 7))
        }
    }
}

fn main() {
    let jobs = sweep::jobs_or_exit();
    let workers = workers_default(32);
    let mut csv = Csv::create(
        "ablate_uniaddr",
        "bench,scheme,threads,pinned_peak_bytes,evac_peak_bytes,conflicts,exec_ms",
    );

    println!("=== §II-D ablation: uni-address vs iso-address (P = {workers}) ===\n");
    println!(
        "{:<10} {:<13} {:>9} {:>14} {:>12} {:>10} {:>10}",
        "bench", "scheme", "threads", "pinned peak", "evac peak", "conflicts", "time"
    );

    let benches = ["RecPFor", "UTS", "LCS"];
    let mut cells: Vec<(&str, AddressScheme)> = Vec::new();
    for name in benches {
        for scheme in [AddressScheme::Uni, AddressScheme::Iso] {
            cells.push((name, scheme));
        }
    }
    let reports = sweep::run_matrix(&cells, jobs, |_, &(name, scheme)| {
        let cfg = RunConfig::new(workers, Policy::ContGreedy)
            .with_address_scheme(scheme)
            .with_seg_bytes(64 << 20);
        dcs_core::run(cfg, mk_program(name))
    });

    let mut next = 0usize;
    for name in benches {
        let mut baseline = None;
        for scheme in [AddressScheme::Uni, AddressScheme::Iso] {
            let r = &reports[next];
            next += 1;
            let pinned = match scheme {
                AddressScheme::Uni => r.uni_peak,
                AddressScheme::Iso => r.iso_peak,
            };
            println!(
                "{:<10} {:<13} {:>9} {:>12} B {:>10} B {:>10} {:>10}",
                name,
                scheme.label(),
                r.threads,
                pinned,
                r.evac_peak,
                r.uni_conflicts,
                r.elapsed.to_string()
            );
            csv.row(&[
                &name,
                &scheme.label(),
                &r.threads,
                &pinned,
                &r.evac_peak,
                &r.uni_conflicts,
                &format!("{:.3}", r.elapsed.as_ms_f64()),
            ]);
            match scheme {
                AddressScheme::Uni => baseline = Some(r.elapsed),
                AddressScheme::Iso => {
                    // Sanity: the schemes must not change scheduling.
                    let base = baseline.expect("uni ran first");
                    let ratio = r.elapsed.as_ns() as f64 / base.as_ns() as f64;
                    assert!(
                        (0.9..1.1).contains(&ratio),
                        "address scheme changed execution time by {ratio}"
                    );
                }
            }
        }
    }
    assert_eq!(next, reports.len(), "render walked the whole matrix");
    println!("\nCSV written to {}", csv.path());
    println!("Uni-address pinning is bounded by nesting depth × slot per worker;");
    println!("iso-address pins a globally unique slot per live thread. With RDMA,");
    println!("all of it must be registered up front (§II-D).");
}
