//! Ablation — what imperfect failure detection costs when nothing dies.
//!
//! The message-based detector can only ever *infer* death from heartbeat
//! silence, so a degraded NIC or a lossy control network makes it evict
//! live workers. The runtime survives that (the "corpse" self-fences and
//! rejoins as a fresh incarnation; its in-flight work is replayed from
//! lineage), but survival has a price. This ablation measures it, for all
//! three fork-join runtimes, with **zero real kills**:
//!
//! 1. **Detector agreement.** Loss-free, the message detector must be a
//!    no-op: same makespan as the oracle detector with the same recovery
//!    machinery armed, zero false suspects. Asserted exactly, not
//!    reported-only — heartbeats are modelled as pure functions of the
//!    fault plan and cost nothing unless they go missing.
//! 2. **False-positive rate vs lease aggressiveness.** Under two noise
//!    models — a degraded NIC on worker 1 (heartbeats delayed by the
//!    flight-scale factor, onset gap ≈ (factor−1)·flight) and a lossy
//!    heartbeat channel (each beat independently dropped with p = 0.2) —
//!    sweep the suspect lease from 2× to 8× the heartbeat period. Short
//!    leases buy fast true detection in exchange for false evictions;
//!    the sweep shows the false-suspect count, the rejoins that repair
//!    them, the epoch-fenced verbs each eviction strands, and what the
//!    whole circus does to the makespan.
//!
//! Every cell asserts the exact serial node count and `workers_lost == 0`:
//! false suspicion may cost time and fenced verbs, never nodes.

use dcs_apps::uts::{self, presets};
use dcs_bench::{mnodes, quick, sweep, workers_default, Csv};
use dcs_core::prelude::*;
use dcs_sim::{DegradeWindow, Detector, VTime};

/// Heartbeat period. Suspect leases are multiples of this; the parser
/// floor (suspect ≥ hb + flight) admits every multiple ≥ 2 swept here.
const HB: VTime = VTime::us(10);

/// Degraded-NIC flight-scale factor: beats arrive (factor−1)·flight late
/// at the window's onset, so a ~39µs arrival gap confronts each lease.
const NIC_FACTOR: f64 = 40.0;

/// Lossy-channel heartbeat drop probability.
const DROP_P: f64 = 0.2;

const POLICIES: [Policy; 3] = [Policy::ChildRtc, Policy::ContGreedy, Policy::ContStalling];

fn policy_name(p: Policy) -> &'static str {
    match p {
        Policy::ChildRtc => "child-rtc",
        Policy::ContGreedy => "cont-greedy",
        Policy::ContStalling => "cont-stalling",
        _ => unreachable!("not part of this ablation"),
    }
}

#[derive(Clone, Copy)]
enum Scenario {
    /// Oracle detector, recovery armed: the baseline every other cell is
    /// measured against (same bookkeeping, perfect detection).
    OracleArmed,
    /// Message detector, loss-free channel: must match the baseline
    /// byte-for-byte in elapsed time.
    MsgLossFree,
    /// Worker 1's NIC degraded by [`NIC_FACTOR`] over the mid-run window;
    /// suspect lease = `mult × HB`.
    DegradedNic(u64),
    /// Every heartbeat dropped with probability [`DROP_P`]; suspect lease
    /// = `mult × HB`.
    LossyHb(u64),
}

impl Scenario {
    fn label(&self) -> String {
        match self {
            Scenario::OracleArmed => "oracle".into(),
            Scenario::MsgLossFree => "msg-lossfree".into(),
            Scenario::DegradedNic(m) => format!("degraded-nic/{m}x"),
            Scenario::LossyHb(m) => format!("lossy-hb/{m}x"),
        }
    }

    fn suspect_mult(&self) -> Option<u64> {
        match self {
            Scenario::DegradedNic(m) | Scenario::LossyHb(m) => Some(*m),
            _ => None,
        }
    }

    /// `healthy` anchors the degrade window at run-relative instants, so
    /// the sweep is deterministic for any `--jobs` value.
    fn plan(&self, healthy: VTime) -> FaultPlan {
        let mut plan = match self {
            Scenario::OracleArmed => FaultPlan::none().with_recovery(),
            Scenario::MsgLossFree => {
                FaultPlan::none().with_recovery().with_detector(Detector::Message)
            }
            Scenario::DegradedNic(mult) => FaultPlan::none()
                .with_detector(Detector::Message)
                .with_suspect(HB.scale(*mult as f64))
                .with_degrade(DegradeWindow {
                    worker: 1,
                    from: healthy.scale(0.25),
                    until: healthy.scale(0.75),
                    factor: NIC_FACTOR,
                }),
            Scenario::LossyHb(mult) => {
                let mut p = FaultPlan::none()
                    .with_detector(Detector::Message)
                    .with_suspect(HB.scale(*mult as f64));
                p.msg_drop_p = DROP_P;
                p
            }
        };
        plan.hb_period = HB;
        plan
    }
}

/// What one cell reports.
struct Cell {
    elapsed: VTime,
    false_suspects: u64,
    rejoins: u64,
    replayed: u64,
    fenced: u64,
}

fn main() {
    let jobs = sweep::jobs_or_exit();
    let spec = if quick() { presets::tiny() } else { presets::small() };
    let p = workers_default(if quick() { 8 } else { 32 });
    let info = uts::serial_count(&spec);
    let profile = profiles::itoa();
    let mults = [2u64, 3, 5, 8];
    let mut scenarios = vec![Scenario::OracleArmed, Scenario::MsgLossFree];
    scenarios.extend(mults.iter().map(|&m| Scenario::DegradedNic(m)));
    scenarios.extend(mults.iter().map(|&m| Scenario::LossyHb(m)));

    println!(
        "=== imperfect-detection ablation (UTS {} nodes, P = {p}, {}, hb {HB}, no kills) ===\n",
        info.nodes, profile.name
    );

    let cfg = |policy: Policy, plan: FaultPlan| {
        RunConfig::new(p, policy)
            .with_profile(profile.clone())
            .with_seg_bytes(64 << 20)
            .with_fault_plan(plan)
    };

    // Healthy (unarmed) makespans anchor each runtime's degrade window.
    let healthy: Vec<VTime> = POLICIES
        .iter()
        .map(|&policy| run(cfg(policy, FaultPlan::none()), uts::program(spec.clone())).elapsed)
        .collect();

    let mut cells: Vec<(usize, usize)> = Vec::new();
    for pi in 0..POLICIES.len() {
        for si in 0..scenarios.len() {
            cells.push((pi, si));
        }
    }
    let results: Vec<Cell> = sweep::run_matrix(&cells, jobs, |_, &(pi, si)| {
        let policy = POLICIES[pi];
        let sc = scenarios[si];
        let r = run(cfg(policy, sc.plan(healthy[pi])), uts::program(spec.clone()));
        let ctx = format!("{} {}", policy_name(policy), sc.label());
        assert!(r.outcome.is_complete(), "{ctx}: suspicion is survivable: {:?}", r.outcome);
        assert_eq!(r.result.as_u64(), info.nodes, "{ctx}: node count must survive false eviction");
        assert_eq!(r.stats.workers_lost, 0, "{ctx}: nobody actually died");
        assert_eq!(
            r.stats.rejoins, r.stats.false_suspects,
            "{ctx}: every falsely evicted worker rejoins"
        );
        Cell {
            elapsed: r.elapsed,
            false_suspects: r.stats.false_suspects,
            rejoins: r.stats.rejoins,
            replayed: r.stats.tasks_replayed,
            fenced: r.fabric.fenced_verbs,
        }
    });

    let mut csv = Csv::create(
        "ablate_suspicion",
        "runtime,scenario,suspect_ns,p,elapsed_ns,throughput_mnodes_s,false_suspects,rejoins,tasks_replayed,fenced_verbs,slowdown",
    );
    println!(
        "{:<14} {:>15} {:>9} {:>12} {:>10} {:>8} {:>8} {:>9} {:>7} {:>9}",
        "runtime", "scenario", "suspect", "elapsed", "thr(Mn/s)", "f.susp", "rejoins", "replayed", "fenced", "slowdown"
    );

    let mut next = 0usize;
    for &policy in &POLICIES {
        let name = policy_name(policy);
        let mut baseline: Option<f64> = None;
        for sc in &scenarios {
            let cell = &results[next];
            next += 1;
            let t = cell.elapsed.as_ns() as f64;
            let slowdown = t / *baseline.get_or_insert(t);
            match sc {
                Scenario::OracleArmed => {}
                Scenario::MsgLossFree => {
                    // Detector agreement: loss-free, the message detector is
                    // indistinguishable from the oracle — exactly, not "to
                    // within noise".
                    assert_eq!(
                        cell.elapsed.as_ns(),
                        baseline.unwrap() as u64,
                        "{name}: loss-free message detector must match the oracle makespan"
                    );
                    assert_eq!(cell.false_suspects, 0, "{name}: loss-free ⇒ no suspicion");
                }
                Scenario::DegradedNic(_) | Scenario::LossyHb(_) => {}
            }
            let suspect = sc
                .suspect_mult()
                .map(|m| HB.scale(m as f64).to_string())
                .unwrap_or_else(|| "-".into());
            let tp = mnodes(info.nodes, cell.elapsed);
            println!(
                "{:<14} {:>15} {:>9} {:>12} {:>10.2} {:>8} {:>8} {:>9} {:>7} {:>8.2}x",
                name,
                sc.label(),
                suspect,
                cell.elapsed.to_string(),
                tp,
                cell.false_suspects,
                cell.rejoins,
                cell.replayed,
                cell.fenced,
                slowdown,
            );
            csv.row(&[
                &name,
                &sc.label(),
                &sc.suspect_mult().map(|m| HB.scale(m as f64).as_ns()).unwrap_or(0),
                &p,
                &cell.elapsed.as_ns(),
                &format!("{tp:.3}"),
                &cell.false_suspects,
                &cell.rejoins,
                &cell.replayed,
                &cell.fenced,
                &format!("{slowdown:.3}"),
            ]);
        }
    }
    assert_eq!(next, results.len(), "render walked the whole matrix");

    println!("\nCSV written to {}", csv.path());
    println!("Expected shape: msg-lossfree == oracle exactly (asserted); aggressive leases");
    println!("(2–3× hb) pay false evictions + replay under noise, conservative ones (5–8×)");
    println!("ride it out — and no cell ever loses a node or a worker.");
}
