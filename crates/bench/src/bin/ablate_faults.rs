//! Ablation — resilience of the four runtimes under deterministic fault
//! injection.
//!
//! Sweeps a transient-fault rate (verb failures, message drops, message
//! duplications) across the three fork-join policies and the one-sided
//! bag-of-tasks runtime, then adds a "hostile" scenario with a degraded
//! NIC window and a crash-stop window on top. Every configuration must
//! produce the exact serial UTS node count — faults may only cost time —
//! and the run reports what the resilience machinery did: verb retries,
//! verb timeouts, and (fork-join) blacklist-driven victim re-draws.

use dcs_apps::uts::{self, presets};
use dcs_bench::{mnodes, quick, sweep, workers_default, Csv};
use dcs_bot::onesided;
use dcs_core::prelude::*;
use dcs_sim::{CrashWindow, DegradeWindow, VTime};

const FAULT_SEED: u64 = 0xAB1A7E;

/// The hostile scenario: transient faults plus a mid-run degraded NIC and a
/// crash-stop window.
fn hostile(p: usize) -> FaultPlan {
    FaultPlan::transient(0.02, FAULT_SEED)
        .with_degrade(DegradeWindow {
            worker: 1 % p,
            from: VTime::us(50),
            until: VTime::ms(2),
            factor: 8.0,
        })
        .with_crash(CrashWindow {
            worker: if p > 2 { 2 } else { 0 },
            from: VTime::us(80),
            until: VTime::ms(1),
        })
}

fn main() {
    let jobs = sweep::jobs_or_exit();
    let spec = if quick() { presets::tiny() } else { presets::small() };
    let p = workers_default(if quick() { 8 } else { 32 });
    let info = uts::serial_count(&spec);
    let profile = profiles::itoa();
    let rates: &[f64] = if quick() {
        &[0.0, 0.05]
    } else {
        &[0.0, 0.01, 0.02, 0.05, 0.1]
    };
    let policies = [Policy::ContGreedy, Policy::ContStalling, Policy::ChildFull];

    let mut csv = Csv::create(
        "ablate_faults",
        "runtime,fault_p,scenario,p,elapsed_ns,throughput_mnodes_s,retries,timeouts,blacklist_skips,slowdown",
    );

    println!(
        "=== fault-injection ablation (UTS {} nodes, P = {p}, {}) ===\n",
        info.nodes, profile.name
    );
    println!(
        "{:<14} {:>8} {:>12} {:>10} {:>9} {:>9} {:>10} {:>9}",
        "runtime", "fault_p", "elapsed", "thr(Mn/s)", "retries", "timeouts", "bl-skips", "slowdown"
    );

    let mut scenarios: Vec<(String, FaultPlan)> = rates
        .iter()
        .map(|&r| {
            (
                format!("transient {r}"),
                if r == 0.0 {
                    FaultPlan::none()
                } else {
                    FaultPlan::transient(r, FAULT_SEED)
                },
            )
        })
        .collect();
    scenarios.push(("hostile".to_string(), hostile(p)));

    // One cell per (runtime, scenario); `None` is the one-sided BoT runtime.
    // Each job returns (elapsed, retries, timeouts, blacklist skips); the
    // correctness asserts run inside the job, the slowdown baselines (first
    // scenario per runtime) are computed at render time.
    let mut cells: Vec<(Option<Policy>, usize)> = Vec::new();
    for policy in policies {
        for (si, _) in scenarios.iter().enumerate() {
            cells.push((Some(policy), si));
        }
    }
    for (si, _) in scenarios.iter().enumerate() {
        cells.push((None, si));
    }
    let results: Vec<(VTime, u64, u64, u64)> =
        sweep::run_matrix(&cells, jobs, |_, &(policy, si)| {
            let (name, plan) = &scenarios[si];
            match policy {
                Some(policy) => {
                    let cfg = RunConfig::new(p, policy)
                        .with_profile(profile.clone())
                        .with_seg_bytes(64 << 20)
                        .with_fault_plan(plan.clone());
                    let r = run(cfg, uts::program(spec.clone()));
                    assert_eq!(r.result.as_u64(), info.nodes, "{policy:?} under {name}");
                    if let Some(wd) = &r.watchdog {
                        assert!(wd.is_clean(), "{policy:?} under {name}: {wd}");
                    }
                    (
                        r.elapsed,
                        r.fabric.retries,
                        r.fabric.timeouts,
                        r.stats.blacklist_skips,
                    )
                }
                None => {
                    let r = onesided::run_uts_faulty(
                        &spec,
                        p,
                        profile.clone(),
                        1,
                        onesided::StealAmount::Half,
                        plan.clone(),
                    );
                    assert_eq!(r.nodes, info.nodes, "one-sided BoT under {name}");
                    (r.elapsed, r.fabric.retries, r.fabric.timeouts, 0)
                }
            }
        });

    let mut next = 0usize;
    for policy in policies {
        let mut baseline: Option<f64> = None;
        for (name, plan) in &scenarios {
            let (elapsed, retries, timeouts, bl_skips) = results[next];
            next += 1;
            let t = elapsed.as_ns() as f64;
            let slowdown = t / *baseline.get_or_insert(t);
            let tp = mnodes(info.nodes, elapsed);
            println!(
                "{:<14} {:>8} {:>12} {:>10.2} {:>9} {:>9} {:>10} {:>8.2}x",
                policy.label(),
                name.trim_start_matches("transient "),
                elapsed.to_string(),
                tp,
                retries,
                timeouts,
                bl_skips,
                slowdown
            );
            csv.row(&[
                &policy.label(),
                &format!("{}", plan.verb_fail_p),
                name,
                &p,
                &elapsed.as_ns(),
                &format!("{tp:.3}"),
                &retries,
                &timeouts,
                &bl_skips,
                &format!("{slowdown:.3}"),
            ]);
        }
    }

    let mut baseline: Option<f64> = None;
    for (name, plan) in &scenarios {
        let (elapsed, retries, timeouts, _) = results[next];
        next += 1;
        let t = elapsed.as_ns() as f64;
        let slowdown = t / *baseline.get_or_insert(t);
        let tp = mnodes(info.nodes, elapsed);
        println!(
            "{:<14} {:>8} {:>12} {:>10.2} {:>9} {:>9} {:>10} {:>8.2}x",
            "bot-onesided",
            name.trim_start_matches("transient "),
            elapsed.to_string(),
            tp,
            retries,
            timeouts,
            "-",
            slowdown
        );
        csv.row(&[
            &"bot-onesided",
            &format!("{}", plan.verb_fail_p),
            name,
            &p,
            &elapsed.as_ns(),
            &format!("{tp:.3}"),
            &retries,
            &timeouts,
            &0,
            &format!("{slowdown:.3}"),
        ]);
    }
    assert_eq!(next, results.len(), "render walked the whole matrix");

    println!("\nCSV written to {}", csv.path());
    println!("Expected shape: identical node counts everywhere; elapsed grows");
    println!("smoothly with the fault rate (retry/backoff absorbs transients);");
    println!("the hostile scenario costs roughly the crash window, not a hang.");
}
