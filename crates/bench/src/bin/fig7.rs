//! Fig. 7 — time series of scheduler activity in RecPFor: number of busy
//! workers (filled area in the paper) and number of ready-to-execute
//! outstanding joins (line plot), for continuation stealing (greedy) versus
//! child stealing (Full).
//!
//! Expected shape: under continuation stealing almost all workers stay busy
//! and ready outstanding joins hover near zero; under child stealing the
//! busy count shows deep "valleys" in the latter half while hundreds of
//! ready joins sit unexecuted (a non-greedy schedule).

use dcs_apps::pfor::{recpfor_program, PforParams};
use dcs_bench::{quick, sweep, workers_default, Csv};
use dcs_core::prelude::*;

fn main() {
    let jobs = sweep::jobs_or_exit();
    let workers = workers_default(64);
    let n = if quick() { 1 << 8 } else { 1 << 12 };
    let buckets = 60;
    let mut csv = Csv::create("fig7", "strategy,t_ms,busy_workers,ready_joins");

    let policies = [Policy::ContGreedy, Policy::ChildFull];
    let reports = sweep::run_matrix(&policies, jobs, |_, &policy| {
        let params = PforParams::paper(n);
        let cfg = RunConfig::new(workers, policy)
            .with_trace(TraceLevel::Series)
            .with_seg_bytes(64 << 20);
        run(cfg, recpfor_program(params))
    });

    for (policy, r) in policies.iter().zip(&reports) {
        let busy = r.stats.busy_series(r.elapsed, buckets);
        let joins = r.stats.ready_join_series(r.elapsed, buckets);

        println!(
            "\n=== Fig. 7: RecPFor N=2^{} {} (P = {workers}, elapsed {}) ===",
            n.ilog2(),
            policy.label(),
            r.elapsed
        );
        println!("{:>9} {:>6} {:>7}  busy-worker sparkline", "t", "busy", "joins");
        for (i, ((t, b), (_, j))) in busy.iter().zip(joins.iter()).enumerate() {
            let bar_len = (*b as usize * 40) / workers.max(1);
            if i % 3 == 0 {
                println!(
                    "{:>9} {:>6} {:>7}  {}",
                    t.to_string(),
                    b,
                    j,
                    "#".repeat(bar_len)
                );
            }
            csv.row(&[
                &policy.label(),
                &format!("{:.3}", t.as_ms_f64()),
                b,
                j,
            ]);
        }
        let avg_busy: f64 =
            busy.iter().map(|&(_, b)| b as f64).sum::<f64>() / busy.len() as f64;
        let max_joins = joins.iter().map(|&(_, j)| j).max().unwrap_or(0);
        println!(
            "avg busy workers: {avg_busy:.1}/{workers}; peak ready outstanding joins: {max_joins}"
        );
    }
    println!("\nCSV written to {}", csv.path());
}
