//! Fig. 8 — UTS throughput scaling on the ITO-A profile: our fork-join
//! continuation-stealing runtime against three bag-of-tasks runtimes, over
//! three tree sizes.
//!
//! Paper: up to 9216 cores; trees T1L < T1XXL < T1WL (0.1–10 Gnodes).
//! Here: up to 512 workers and the scaled tree family (~80 k / ~0.3 M /
//! ~1.2 M nodes). The *shape* to reproduce: one-sided runtimes
//! (cont-steal, SAWS-like BoT) keep scaling even on small trees; the
//! two-sided runtimes (Charm++-like, X10/GLB-like) fall off; the smallest
//! tree saturates first for everyone.
//!
//! Every runtime must report the identical node count — the cross-runtime
//! correctness check the tree's determinism provides.

use dcs_apps::uts::{self, presets, serial_vtime};
use dcs_bench::{mnodes, quick, Csv};
use dcs_bot::{onesided, twosided};
use dcs_core::prelude::*;

fn main() {
    let trees = if quick() {
        vec![("tiny", presets::tiny())]
    } else {
        vec![
            ("T1L~", presets::small()),
            ("T1XXL~", presets::medium()),
            ("T1WL~", presets::large()),
        ]
    };
    let ps: &[usize] = if quick() {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
    };
    // The two-sided runtimes are simulated at the scale where their
    // behaviour is already clear; their per-event cost explodes with P.
    let two_sided_cap = 128;

    let profile = profiles::itoa();
    let mut csv = Csv::create("fig8", "tree,nodes,runtime,p,throughput_mnodes_s");

    for (name, spec) in &trees {
        let info = uts::serial_count(spec);
        let t_serial = serial_vtime(spec, profile.compute_scale);
        println!(
            "\n=== Fig. 8: UTS {name} ({} nodes, depth {}) on {} ===",
            info.nodes, info.max_depth, profile.name
        );
        println!(
            "serial: {} ({:.2} Mnodes/s); ideal line = serial throughput × P",
            t_serial,
            mnodes(info.nodes, t_serial)
        );
        println!(
            "{:>5} {:>14} {:>14} {:>14} {:>14} {:>8}",
            "P", "cont-steal", "bot-1sided", "bot-2sided", "bot-lifeline", "ideal"
        );
        for &p in ps {
            let fj = run(
                RunConfig::new(p, Policy::ContGreedy)
                    .with_profile(profile.clone())
                    .with_seg_bytes(64 << 20),
                uts::program((*spec).clone()),
            );
            assert_eq!(fj.result.as_u64(), info.nodes, "fork-join count");
            let fj_tp = mnodes(info.nodes, fj.elapsed);

            let os = onesided::run_uts(spec, p, profile.clone(), 1);
            assert_eq!(os.nodes, info.nodes, "one-sided BoT count");
            let os_tp = mnodes(os.nodes, os.elapsed);

            let (ts_tp, ll_tp) = if p <= two_sided_cap {
                let ts =
                    twosided::run_uts(spec, p, profile.clone(), twosided::Variant::Random, 1);
                assert_eq!(ts.nodes, info.nodes, "two-sided BoT count");
                let ll =
                    twosided::run_uts(spec, p, profile.clone(), twosided::Variant::Lifeline, 1);
                assert_eq!(ll.nodes, info.nodes, "lifeline BoT count");
                (
                    Some(mnodes(ts.nodes, ts.elapsed)),
                    Some(mnodes(ll.nodes, ll.elapsed)),
                )
            } else {
                (None, None)
            };

            let ideal = mnodes(info.nodes, t_serial) * p as f64;
            let fmt = |x: Option<f64>| match x {
                Some(v) => format!("{v:>11.2} Mn", v = v),
                None => format!("{:>14}", "-"),
            };
            println!(
                "{:>5} {:>11.2} Mn {:>11.2} Mn {} {} {:>8.1}",
                p,
                fj_tp,
                os_tp,
                fmt(ts_tp),
                fmt(ll_tp),
                ideal
            );
            for (rt, tp) in [
                ("cont-steal", Some(fj_tp)),
                ("bot-onesided", Some(os_tp)),
                ("bot-twosided", ts_tp),
                ("bot-lifeline", ll_tp),
            ] {
                if let Some(tp) = tp {
                    csv.row(&[name, &info.nodes, &rt, &p, &format!("{tp:.3}")]);
                }
            }
        }
    }
    println!("\nCSV written to {}", csv.path());
    println!("Paper shape: one-sided runtimes track the ideal line; two-sided");
    println!("runtimes flatten early; the smallest tree saturates first.");
}
