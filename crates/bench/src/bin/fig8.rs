//! Fig. 8 — UTS throughput scaling on the ITO-A profile: our fork-join
//! continuation-stealing runtime against three bag-of-tasks runtimes, over
//! three tree sizes.
//!
//! Paper: up to 9216 cores; trees T1L < T1XXL < T1WL (0.1–10 Gnodes).
//! Here: up to 512 workers and the scaled tree family (~80 k / ~0.3 M /
//! ~1.2 M nodes). The *shape* to reproduce: one-sided runtimes
//! (cont-steal, SAWS-like BoT) keep scaling even on small trees; the
//! two-sided runtimes (Charm++-like, X10/GLB-like) fall off; the smallest
//! tree saturates first for everyone.
//!
//! Every runtime must report the identical node count — the cross-runtime
//! correctness check the tree's determinism provides.

use dcs_apps::uts::{self, presets, serial_vtime};
use dcs_bench::{mnodes, quick, sweep, Csv};
use dcs_bot::{onesided, twosided};
use dcs_core::prelude::*;

/// The four runtimes raced per (tree, P) point.
#[derive(Clone, Copy)]
enum Runtime {
    ContSteal,
    BotOnesided,
    BotTwosided,
    BotLifeline,
}

fn main() {
    let jobs = sweep::jobs_or_exit();
    let trees = if quick() {
        vec![("tiny", presets::tiny())]
    } else {
        vec![
            ("T1L~", presets::small()),
            ("T1XXL~", presets::medium()),
            ("T1WL~", presets::large()),
        ]
    };
    let ps: &[usize] = if quick() {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
    };
    // The two-sided runtimes are simulated at the scale where their
    // behaviour is already clear; their per-event cost explodes with P.
    let two_sided_cap = 128;

    let profile = profiles::itoa();
    let mut csv = Csv::create("fig8", "tree,nodes,runtime,p,throughput_mnodes_s");

    // Per-tree serial info (cheap, host-side), then one sweep cell per
    // (tree, P, runtime) — the expensive simulations — fanned across jobs.
    let infos: Vec<_> = trees.iter().map(|(_, spec)| uts::serial_count(spec)).collect();
    let mut cells: Vec<(usize, usize, Runtime)> = Vec::new();
    for (ti, _) in trees.iter().enumerate() {
        for &p in ps {
            cells.push((ti, p, Runtime::ContSteal));
            cells.push((ti, p, Runtime::BotOnesided));
            if p <= two_sided_cap {
                cells.push((ti, p, Runtime::BotTwosided));
                cells.push((ti, p, Runtime::BotLifeline));
            }
        }
    }
    let tps: Vec<f64> = sweep::run_matrix(&cells, jobs, |_, &(ti, p, rt)| {
        let spec = &trees[ti].1;
        let nodes = infos[ti].nodes;
        match rt {
            Runtime::ContSteal => {
                let fj = run(
                    RunConfig::new(p, Policy::ContGreedy)
                        .with_profile(profile.clone())
                        .with_seg_bytes(64 << 20),
                    uts::program(spec.clone()),
                );
                assert_eq!(fj.result.as_u64(), nodes, "fork-join count");
                mnodes(nodes, fj.elapsed)
            }
            Runtime::BotOnesided => {
                let os = onesided::run_uts(spec, p, profile.clone(), 1);
                assert_eq!(os.nodes, nodes, "one-sided BoT count");
                mnodes(os.nodes, os.elapsed)
            }
            Runtime::BotTwosided => {
                let ts = twosided::run_uts(spec, p, profile.clone(), twosided::Variant::Random, 1);
                assert_eq!(ts.nodes, nodes, "two-sided BoT count");
                mnodes(ts.nodes, ts.elapsed)
            }
            Runtime::BotLifeline => {
                let ll =
                    twosided::run_uts(spec, p, profile.clone(), twosided::Variant::Lifeline, 1);
                assert_eq!(ll.nodes, nodes, "lifeline BoT count");
                mnodes(ll.nodes, ll.elapsed)
            }
        }
    });

    let mut next = 0usize;
    for (ti, (name, spec)) in trees.iter().enumerate() {
        let info = &infos[ti];
        let t_serial = serial_vtime(spec, profile.compute_scale);
        println!(
            "\n=== Fig. 8: UTS {name} ({} nodes, depth {}) on {} ===",
            info.nodes, info.max_depth, profile.name
        );
        println!(
            "serial: {} ({:.2} Mnodes/s); ideal line = serial throughput × P",
            t_serial,
            mnodes(info.nodes, t_serial)
        );
        println!(
            "{:>5} {:>14} {:>14} {:>14} {:>14} {:>8}",
            "P", "cont-steal", "bot-1sided", "bot-2sided", "bot-lifeline", "ideal"
        );
        for &p in ps {
            let fj_tp = tps[next];
            let os_tp = tps[next + 1];
            next += 2;
            let (ts_tp, ll_tp) = if p <= two_sided_cap {
                let pair = (Some(tps[next]), Some(tps[next + 1]));
                next += 2;
                pair
            } else {
                (None, None)
            };

            let ideal = mnodes(info.nodes, t_serial) * p as f64;
            let fmt = |x: Option<f64>| match x {
                Some(v) => format!("{v:>11.2} Mn", v = v),
                None => format!("{:>14}", "-"),
            };
            println!(
                "{:>5} {:>11.2} Mn {:>11.2} Mn {} {} {:>8.1}",
                p,
                fj_tp,
                os_tp,
                fmt(ts_tp),
                fmt(ll_tp),
                ideal
            );
            for (rt, tp) in [
                ("cont-steal", Some(fj_tp)),
                ("bot-onesided", Some(os_tp)),
                ("bot-twosided", ts_tp),
                ("bot-lifeline", ll_tp),
            ] {
                if let Some(tp) = tp {
                    csv.row(&[name, &info.nodes, &rt, &p, &format!("{tp:.3}")]);
                }
            }
        }
    }
    println!("\nCSV written to {}", csv.path());
    println!("Paper shape: one-sided runtimes track the ideal line; two-sided");
    println!("runtimes flatten early; the smallest tree saturates first.");
}
