//! Table III — LCS execution times under three scheduling policies.
//!
//! Paper: N = 2^18 / 2^22 on ITO-A with 576 cores; greedy join an order of
//! magnitude faster than stalling join, two orders faster than child
//! stealing (whose tied tasks leave almost everything on the main worker).
//! Here: N scaled (2^12 / 2^14, C = 512), P = 64 (override `DCS_WORKERS`).
//! The result is validated against the O(N²) reference DP.

use dcs_apps::lcs::{self, LcsParams};
use dcs_bench::{quick, sweep, workers_default, Csv};
use dcs_core::prelude::*;

const POLICIES: [Policy; 3] = [Policy::ContGreedy, Policy::ContStalling, Policy::ChildFull];

fn main() {
    let jobs = sweep::jobs_or_exit();
    let workers = workers_default(64);
    let sizes: &[u64] = if quick() { &[1 << 10] } else { &[1 << 12, 1 << 14] };
    let c = 512.min(sizes[0]);
    let profile = profiles::itoa();
    let mut csv = Csv::create("table3", "n,policy,exec_ms,outstanding_joins,steals_ok");

    // Inputs and the O(N²) reference answer are shared per N (host-side);
    // the simulations themselves fan out across jobs.
    let inputs: Vec<(LcsParams, u64)> = sizes
        .iter()
        .map(|&n| {
            let params = LcsParams::random(n, c, 7);
            let expected = lcs::lcs_reference(&params.a, &params.b) as u64;
            (params, expected)
        })
        .collect();
    let mut cells: Vec<(usize, Policy)> = Vec::new();
    for (ni, _) in sizes.iter().enumerate() {
        for policy in POLICIES {
            cells.push((ni, policy));
        }
    }
    let reports = sweep::run_matrix(&cells, jobs, |_, &(ni, policy)| {
        let (params, expected) = &inputs[ni];
        let cfg = RunConfig::new(workers, policy)
            .with_profile(profile.clone())
            .with_seg_bytes(64 << 20);
        let r = run(cfg, lcs::program(params.clone()));
        assert_eq!(r.result.as_u64(), *expected, "{policy:?} wrong LCS length");
        r
    });

    println!("=== Table III: LCS on {} (P = {workers}, C = {c}) ===\n", profile.name);
    println!(
        "{:<8} {:<26} {:>12} {:>10} {:>8}",
        "N", "policy", "time", "#outjoin", "#steals"
    );
    let mut next = 0usize;
    for &n in sizes {
        for policy in POLICIES {
            let r = &reports[next];
            next += 1;
            println!(
                "2^{:<6} {:<26} {:>12} {:>10} {:>8}",
                n.ilog2(),
                policy.label(),
                r.elapsed.to_string(),
                r.stats.outstanding_joins,
                r.stats.steals_ok
            );
            csv.row(&[
                &n,
                &policy.label(),
                &format!("{:.3}", r.elapsed.as_ms_f64()),
                &r.stats.outstanding_joins,
                &r.stats.steals_ok,
            ]);
        }
        println!();
    }
    assert_eq!(next, reports.len(), "render walked the whole matrix");
    println!("CSV written to {}", csv.path());
    println!("Paper shape: greedy ≪ stalling ≪ child-full, roughly an order of");
    println!("magnitude per step (Table III: 0.569 s / 3.44 s / 93.1 s at 2^18).");
}
