//! Table III — LCS execution times under three scheduling policies.
//!
//! Paper: N = 2^18 / 2^22 on ITO-A with 576 cores; greedy join an order of
//! magnitude faster than stalling join, two orders faster than child
//! stealing (whose tied tasks leave almost everything on the main worker).
//! Here: N scaled (2^12 / 2^14, C = 512), P = 64 (override `DCS_WORKERS`).
//! The result is validated against the O(N²) reference DP.

use dcs_apps::lcs::{self, LcsParams};
use dcs_bench::{quick, workers_default, Csv};
use dcs_core::prelude::*;

fn main() {
    let workers = workers_default(64);
    let sizes: &[u64] = if quick() { &[1 << 10] } else { &[1 << 12, 1 << 14] };
    let c = 512.min(sizes[0]);
    let profile = profiles::itoa();
    let mut csv = Csv::create("table3", "n,policy,exec_ms,outstanding_joins,steals_ok");

    println!("=== Table III: LCS on {} (P = {workers}, C = {c}) ===\n", profile.name);
    println!(
        "{:<8} {:<26} {:>12} {:>10} {:>8}",
        "N", "policy", "time", "#outjoin", "#steals"
    );
    for &n in sizes {
        let params = LcsParams::random(n, c, 7);
        let expected = lcs::lcs_reference(&params.a, &params.b) as u64;
        for policy in [Policy::ContGreedy, Policy::ContStalling, Policy::ChildFull] {
            let cfg = RunConfig::new(workers, policy)
                .with_profile(profile.clone())
                .with_seg_bytes(64 << 20);
            let r = run(cfg, lcs::program(params.clone()));
            assert_eq!(r.result.as_u64(), expected, "{policy:?} wrong LCS length");
            println!(
                "2^{:<6} {:<26} {:>12} {:>10} {:>8}",
                n.ilog2(),
                policy.label(),
                r.elapsed.to_string(),
                r.stats.outstanding_joins,
                r.stats.steals_ok
            );
            csv.row(&[
                &n,
                &policy.label(),
                &format!("{:.3}", r.elapsed.as_ms_f64()),
                &r.stats.outstanding_joins,
                &r.stats.steals_ok,
            ]);
        }
        println!();
    }
    println!("CSV written to {}", csv.path());
    println!("Paper shape: greedy ≪ stalling ≪ child-full, roughly an order of");
    println!("magnitude per step (Table III: 0.569 s / 3.44 s / 93.1 s at 2^18).");
}
