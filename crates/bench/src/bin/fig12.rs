//! Fig. 12 — LCS execution time of continuation stealing (greedy join)
//! versus the greedy-scheduling-theorem bounds, across problem sizes and
//! worker counts.
//!
//! With `T1 = (N/C)²·Tc` and `T∞ = (2N/C − 1)·Tc` the bounds are
//! `max(T1/P, T∞) ≤ T_P ≤ T1/P + T∞`. The paper shows most measured points
//! inside the band up to ~10k cores — evidence that "almost no tasks were
//! unnecessarily blocked by the scheduler".

use dcs_apps::lcs::{self, LcsParams};
use dcs_bench::{quick, sweep, Csv};
use dcs_core::prelude::*;

fn main() {
    let jobs = sweep::jobs_or_exit();
    let sizes: &[u64] = if quick() {
        &[1 << 10]
    } else {
        &[1 << 11, 1 << 12, 1 << 13, 1 << 14]
    };
    let ps: &[usize] = if quick() {
        &[1, 4]
    } else {
        &[1, 4, 16, 64, 256]
    };
    let c = 512;
    let profile = profiles::itoa();
    let scale = profile.compute_scale;
    let mut csv = Csv::create("fig12", "n,p,t_ms,lower_ms,upper_ms,in_bounds");

    // Inputs + reference answer shared per N; the (N, P) grid of
    // simulations fans out across jobs.
    let inputs: Vec<(LcsParams, u64)> = sizes
        .iter()
        .map(|&n| {
            let params = LcsParams::random(n, c.min(n), 7);
            let expected = lcs::lcs_reference(&params.a, &params.b) as u64;
            (params, expected)
        })
        .collect();
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for (ni, _) in sizes.iter().enumerate() {
        for &p in ps {
            cells.push((ni, p));
        }
    }
    let elapsed: Vec<VTime> = sweep::run_matrix(&cells, jobs, |_, &(ni, p)| {
        let (params, expected) = &inputs[ni];
        let cfg = RunConfig::new(p, Policy::ContGreedy)
            .with_profile(profile.clone())
            .with_seg_bytes(64 << 20);
        let r = run(cfg, lcs::program(params.clone()));
        assert_eq!(r.result.as_u64(), *expected);
        r.elapsed
    });

    println!("=== Fig. 12: LCS bounds check on {} (C = {c}) ===", profile.name);
    let mut inside = 0usize;
    let mut total = 0usize;
    let mut next = 0usize;
    for (ni, &n) in sizes.iter().enumerate() {
        let params = &inputs[ni].0;
        let t1 = params.t1(scale);
        let tinf = params.t_inf(scale);
        println!(
            "\nN = 2^{} (T1 = {}, T∞ = {}):",
            n.ilog2(),
            t1,
            tinf
        );
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>8}",
            "P", "lower", "measured", "upper", "inside"
        );
        for &p in ps {
            let r_elapsed = elapsed[next];
            next += 1;
            let lower = (t1 / p as u64).max(tinf);
            let upper = t1 / p as u64 + tinf;
            // The theorem assumes zero runtime overhead; allow the paper's
            // observed slack above the ideal upper bound.
            let ok = r_elapsed >= lower && r_elapsed.as_ns() as f64 <= upper.as_ns() as f64 * 1.25;
            inside += ok as usize;
            total += 1;
            println!(
                "{:>6} {:>12} {:>12} {:>12} {:>8}",
                p,
                lower.to_string(),
                r_elapsed.to_string(),
                upper.to_string(),
                if ok { "yes" } else { "NO" }
            );
            csv.row(&[
                &n,
                &p,
                &format!("{:.3}", r_elapsed.as_ms_f64()),
                &format!("{:.3}", lower.as_ms_f64()),
                &format!("{:.3}", upper.as_ms_f64()),
                &ok,
            ]);
        }
    }
    assert_eq!(next, elapsed.len(), "render walked the whole matrix");
    println!(
        "\n{} / {} points within the greedy-scheduling band (paper: \"most\")",
        inside, total
    );
    println!("CSV written to {}", csv.path());
}
