//! Fig. 6 companion — the three steal-protocol families head-to-head on
//! RecPFor (ITO-A).
//!
//! The deque hot path comes in three flavours (docs/PROTOCOLS.md):
//!
//! * `cas-lock`   — thieves serialize on a per-deque lock word (CAS to
//!   acquire, put to release); the baseline everywhere else in the repo,
//! * `lock-free`  — thieves claim the top entry with a single remote CAS,
//!   no lock word, owner CAS only for the last-item race,
//! * `fence-free` — thieves use plain reads and writes only (zero AMO
//!   verbs on the steal path); the resulting bounded multiplicity is
//!   closed at runtime by the done-flag/lineage dedup, so a doubly-taken
//!   task executes at most once observably.
//!
//! Reported per (config, protocol, fabric mode): virtual makespan, mean
//! steal latency, steal and AMO counts, and the fence-free dup/lost-race
//! counters that measure how often the multiplicity bound is actually
//! exercised. Acceptance bars asserted here:
//!
//! 1. fence-free issues strictly fewer remote AMOs than cas-lock in every
//!    cell, and **zero** under child-rtc + local collection (no DIE flags,
//!    no free-queue locks — the steal path is the only AMO client left);
//! 2. under `FabricMode::Pipelined` the fence-free thief overlaps the
//!    payload copy with the claim write (max verbs in flight ≥ 2).

use dcs_apps::pfor::{recpfor_program, PforParams};
use dcs_bench::{quick, sweep, workers_default, Csv};
use dcs_core::prelude::*;

struct Config {
    name: &'static str,
    policy: Policy,
    free: FreeStrategy,
}

const CONFIGS: [Config; 2] = [
    Config {
        name: "greedy",
        policy: Policy::ContGreedy,
        free: FreeStrategy::LocalCollection,
    },
    Config {
        name: "child-rtc",
        policy: Policy::ChildRtc,
        free: FreeStrategy::LocalCollection,
    },
];

const MODES: [FabricMode; 2] = [FabricMode::Blocking, FabricMode::Pipelined];

/// One cell: (elapsed, mean steal latency, steals, AMOs, dups, lost races,
/// max verbs in flight).
type Cell = (VTime, VTime, u64, u64, u64, u64, u64);

fn main() {
    let jobs = sweep::jobs_or_exit();
    let p = workers_default(if quick() { 8 } else { 32 });
    let n: u64 = if quick() { 256 } else { 1024 };
    let params = PforParams::paper(n);
    let profile = profiles::itoa();

    println!(
        "=== Fig. 6 protocols: RecPFor N = {n}, P = {p}, {} ===\n",
        profile.name
    );

    const REPS: u64 = 3;
    let mut cells: Vec<(usize, usize, usize, u64)> = Vec::new();
    for ci in 0..CONFIGS.len() {
        for pi in 0..Protocol::ALL.len() {
            for mi in 0..MODES.len() {
                for rep in 0..REPS {
                    cells.push((ci, pi, mi, rep));
                }
            }
        }
    }
    let raw: Vec<Cell> = sweep::run_matrix(&cells, jobs, |_, &(ci, pi, mi, rep)| {
        let cfg = &CONFIGS[ci];
        let r = run(
            RunConfig::new(p, cfg.policy)
                .with_profile(profile.clone())
                .with_free_strategy(cfg.free)
                .with_protocol(Protocol::ALL[pi])
                .with_fabric(MODES[mi])
                .with_seed(0x5EED + rep)
                .with_seg_bytes(64 << 20),
            recpfor_program(params),
        );
        assert!(
            r.outcome.is_complete(),
            "{} / {}: run completes",
            cfg.name,
            Protocol::ALL[pi].label()
        );
        (
            r.elapsed,
            r.stats.avg_steal_latency(),
            r.stats.steals_ok,
            r.fabric.remote_amos,
            r.stats.ff_dups,
            r.stats.ff_lost_races,
            r.fabric.max_inflight,
        )
    });
    // Mean the reps back into one cell per (config, protocol, mode).
    let mean = |ci: usize, pi: usize, mi: usize| -> Cell {
        let base = ((ci * Protocol::ALL.len() + pi) * MODES.len() + mi) * REPS as usize;
        let (mut e, mut l, mut s, mut a, mut dup, mut lost, mut d) =
            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for r in 0..REPS as usize {
            let (re, rl, rs, ra, rdup, rlost, rd) = raw[base + r];
            e += re.as_ns();
            l += rl.as_ns();
            s += rs;
            a += ra;
            dup += rdup;
            lost += rlost;
            d = d.max(rd);
        }
        (
            VTime::ns(e / REPS),
            VTime::ns(l / REPS),
            s / REPS,
            a / REPS,
            dup / REPS,
            lost / REPS,
            d,
        )
    };

    let mut csv = Csv::create(
        "fig6_protocols",
        "config,protocol,fabric,p,n,elapsed_ns,steal_lat_ns,steals_ok,remote_amos,ff_dups,ff_lost,max_inflight,makespan_vs_caslock,steal_lat_vs_caslock",
    );
    println!(
        "{:<10} {:<11} {:>10} {:>12} {:>12} {:>7} {:>8} {:>5} {:>5} {:>9} {:>9}",
        "config", "protocol", "fabric", "elapsed", "steal-lat", "steals", "amos", "dups", "lost", "makespan", "lat-ratio"
    );

    for (ci, cfg) in CONFIGS.iter().enumerate() {
        for (mi, mode) in MODES.iter().enumerate() {
            // Ratios are against cas-lock under the same fabric mode.
            let (be, bl, _, ba, _, _, _) = mean(ci, 0, mi);
            for (pi, proto) in Protocol::ALL.iter().enumerate() {
                let (e, l, s, a, dup, lost, d) = mean(ci, pi, mi);
                let mk_ratio = e.as_ns() as f64 / be.as_ns() as f64;
                let lat_ratio = if bl.as_ns() == 0 {
                    1.0
                } else {
                    l.as_ns() as f64 / bl.as_ns() as f64
                };
                if *proto == Protocol::FenceFree {
                    assert!(
                        a < ba,
                        "acceptance: fence-free must issue fewer AMOs than \
                         cas-lock ({a} vs {ba}, {} {})",
                        cfg.name,
                        mode.label()
                    );
                    if cfg.policy == Policy::ChildRtc {
                        assert_eq!(
                            a, 0,
                            "acceptance: child-rtc + local collection + \
                             fence-free is the zero-AMO configuration"
                        );
                    }
                    if *mode == FabricMode::Pipelined && s > 0 {
                        assert!(
                            d >= 2,
                            "acceptance: pipelined fence-free steals overlap \
                             the claim write with the payload copy"
                        );
                    }
                }
                println!(
                    "{:<10} {:<11} {:>10} {:>12} {:>12} {:>7} {:>8} {:>5} {:>5} {:>8.3}x {:>9.3}",
                    cfg.name, proto.label(), mode.label(), e.to_string(), l.to_string(), s, a, dup, lost, mk_ratio, lat_ratio
                );
                csv.row(&[
                    &cfg.name,
                    &proto.label(),
                    &mode.label(),
                    &p,
                    &n,
                    &e.as_ns(),
                    &l.as_ns(),
                    &s,
                    &a,
                    &dup,
                    &lost,
                    &d,
                    &format!("{mk_ratio:.4}"),
                    &format!("{lat_ratio:.4}"),
                ]);
            }
        }
        println!();
    }

    println!("CSV written to {}", csv.path());
    println!("Expected shape: lock-free shaves the lock round-trips off every");
    println!("steal; fence-free trades the last AMO for a small dup/lost-race");
    println!("tax that the done-flag dedup absorbs without a second execution.");
}
