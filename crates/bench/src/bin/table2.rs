//! Table II — statistics of join and steal events for the four strategies
//! on PFor and RecPFor, on both machine profiles.
//!
//! Paper columns: execution time, # outstanding joins, avg outstanding join
//! time, # successful steals, avg steal latency, # failed steals, avg
//! stolen task size, avg task copy time — profiled at the largest Fig. 6
//! problem sizes.
//!
//! Expected shape: child stealing suffers orders of magnitude more
//! outstanding joins on RecPFor (RtC worst — buried joins); continuation
//! stealing's stolen tasks are ~1–2 kB (vs. ~55 B) yet its successful-steal
//! latency is < 20% higher; only greedy join keeps the average outstanding
//! join time in the microsecond range.

use dcs_apps::pfor::{pfor_program, recpfor_program, PforParams};
use dcs_bench::{quick, sweep, workers_default, Csv};
use dcs_core::prelude::*;

fn main() {
    let jobs = sweep::jobs_or_exit();
    let workers = workers_default(64);
    let (pfor_n, recpfor_n): (u64, u64) = if quick() {
        (1 << 12, 1 << 8)
    } else {
        (1 << 16, 1 << 12)
    };
    let mut csv = Csv::create(
        "table2",
        "machine,bench,strategy,exec_ms,outstanding_joins,avg_outstanding_us,steals_ok,avg_steal_latency_us,steals_failed,avg_stolen_bytes,avg_copy_us",
    );

    let machines = [profiles::itoa(), profiles::wisteria()];
    let mut cells: Vec<(usize, &'static str, u64, Policy)> = Vec::new();
    for (mi, _) in machines.iter().enumerate() {
        for (bench, n) in [("PFor", pfor_n), ("RecPFor", recpfor_n)] {
            for policy in Policy::ALL {
                cells.push((mi, bench, n, policy));
            }
        }
    }
    let reports = sweep::run_matrix(&cells, jobs, |_, &(mi, bench, n, policy)| {
        let params = PforParams::paper(n);
        let cfg = RunConfig::new(workers, policy)
            .with_profile(machines[mi].clone())
            .with_seg_bytes(64 << 20);
        let program = match bench {
            "PFor" => pfor_program(params),
            _ => recpfor_program(params),
        };
        run(cfg, program)
    });

    let mut next = 0usize;
    for profile in &machines {
        for (bench, n) in [("PFor", pfor_n), ("RecPFor", recpfor_n)] {
            println!(
                "\n=== Table II: {bench} N=2^{} on {} (P = {workers}) ===",
                n.ilog2(),
                profile.name
            );
            println!(
                "{:<24} {:>9} {:>10} {:>11} {:>9} {:>9} {:>9} {:>9} {:>8}",
                "strategy",
                "time",
                "#outjoin",
                "avg oj",
                "#steal",
                "latency",
                "#failed",
                "size",
                "copy"
            );
            for policy in Policy::ALL {
                let r = &reports[next];
                next += 1;
                let s = &r.stats;
                println!(
                    "{:<24} {:>9} {:>10} {:>9}us {:>9} {:>7}us {:>9} {:>7}B {:>6}us",
                    policy.label(),
                    r.elapsed.to_string(),
                    s.outstanding_joins,
                    format_us(s.avg_outstanding_time()),
                    s.steals_ok,
                    format_us(s.avg_steal_latency()),
                    s.steals_failed,
                    s.avg_stolen_bytes(),
                    format_us(s.avg_copy_time()),
                );
                csv.row(&[
                    &profile.name,
                    &bench,
                    &policy.label(),
                    &format!("{:.3}", r.elapsed.as_ms_f64()),
                    &s.outstanding_joins,
                    &format!("{:.1}", s.avg_outstanding_time().as_us_f64()),
                    &s.steals_ok,
                    &format!("{:.1}", s.avg_steal_latency().as_us_f64()),
                    &s.steals_failed,
                    &s.avg_stolen_bytes(),
                    &format!("{:.2}", s.avg_copy_time().as_us_f64()),
                ]);
            }
        }
    }
    println!("\nCSV written to {}", csv.path());
}

fn format_us(t: VTime) -> String {
    let us = t.as_us_f64();
    if us >= 100.0 {
        format!("{us:.0}")
    } else {
        format!("{us:.1}")
    }
}
