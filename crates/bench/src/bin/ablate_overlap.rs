//! Ablation — what posting verbs instead of blocking on them buys.
//!
//! `FabricMode::Blocking` issues every one-sided verb serially (post at
//! t=0, wait, advance); `FabricMode::Pipelined` lets the protocol hot
//! paths post independent verbs back-to-back and reap them from the
//! completion queue — the thief's lock-release put rides alongside the
//! stack copy, DIE's result put overlaps the flag AMO, and the one-sided
//! BoT's size update overlaps the task-block read.
//!
//! Two experiment families, matching the figures the refactor targets:
//!
//! 1. **Fig. 6 (RecPFor, ITO-A).** The five runtime configurations of the
//!    efficiency figure, run under both fabric modes. Reported: virtual
//!    makespan and mean steal latency. The acceptance bar — at least one
//!    configuration must improve in *both* metrics — is asserted here.
//! 2. **Fig. 8 (UTS-L, one-sided BoT).** The T1L-scale tree under both
//!    modes; the steal-half critical section is two verbs shorter when
//!    pipelined, so end-to-end time must drop. Node counts are asserted
//!    against the serial tree in every cell.

use dcs_apps::pfor::{recpfor_program, PforParams};
use dcs_apps::uts::{self, presets};
use dcs_bench::{quick, sweep, workers_default, Csv};
use dcs_bot::onesided;
use dcs_core::prelude::*;

struct Config {
    name: &'static str,
    policy: Policy,
    free: FreeStrategy,
}

const CONFIGS: [Config; 5] = [
    Config {
        name: "baseline",
        policy: Policy::ContStalling,
        free: FreeStrategy::LockQueue,
    },
    Config {
        name: "+localcol",
        policy: Policy::ContStalling,
        free: FreeStrategy::LocalCollection,
    },
    Config {
        name: "greedy",
        policy: Policy::ContGreedy,
        free: FreeStrategy::LocalCollection,
    },
    Config {
        name: "child-full",
        policy: Policy::ChildFull,
        free: FreeStrategy::LocalCollection,
    },
    Config {
        name: "child-rtc",
        policy: Policy::ChildRtc,
        free: FreeStrategy::LocalCollection,
    },
];

const MODES: [FabricMode; 2] = [FabricMode::Blocking, FabricMode::Pipelined];

/// One cell: (elapsed, mean steal latency, steals, max verbs in flight).
type Cell = (VTime, VTime, u64, u64);

fn main() {
    let jobs = sweep::jobs_or_exit();
    let p = workers_default(if quick() { 8 } else { 32 });
    let n: u64 = if quick() { 256 } else { 1024 };
    let params = PforParams::paper(n);
    let spec = if quick() { presets::tiny() } else { presets::small() };
    let info = uts::serial_count(&spec);
    let profile = profiles::itoa();

    println!(
        "=== posted-verb overlap ablation (RecPFor N = {n} + UTS {} nodes, P = {p}, {}) ===\n",
        info.nodes, profile.name
    );

    // Fig. 6 cells: config × fabric mode, three seeds each, meaned.
    const REPS: u64 = 3;
    let mut cells: Vec<(usize, usize, u64)> = Vec::new();
    for ci in 0..CONFIGS.len() {
        for mi in 0..MODES.len() {
            for rep in 0..REPS {
                cells.push((ci, mi, rep));
            }
        }
    }
    let raw: Vec<Cell> = sweep::run_matrix(&cells, jobs, |_, &(ci, mi, rep)| {
        let cfg = &CONFIGS[ci];
        let r = run(
            RunConfig::new(p, cfg.policy)
                .with_profile(profile.clone())
                .with_free_strategy(cfg.free)
                .with_fabric(MODES[mi])
                .with_seed(0x5EED + rep)
                .with_seg_bytes(64 << 20),
            recpfor_program(params),
        );
        assert!(r.outcome.is_complete(), "{}: run completes", cfg.name);
        (
            r.elapsed,
            r.stats.avg_steal_latency(),
            r.stats.steals_ok,
            r.fabric.max_inflight,
        )
    });
    // Mean the reps back into one cell per (config, mode).
    let mean = |ci: usize, mi: usize| -> Cell {
        let base = (ci * MODES.len() + mi) * REPS as usize;
        let (mut e, mut l, mut s, mut d) = (0u64, 0u64, 0u64, 0u64);
        for r in 0..REPS as usize {
            let (re, rl, rs, rd) = raw[base + r];
            e += re.as_ns();
            l += rl.as_ns();
            s += rs;
            d = d.max(rd);
        }
        (
            VTime::ns(e / REPS),
            VTime::ns(l / REPS),
            s / REPS,
            d,
        )
    };

    let mut csv = Csv::create(
        "ablate_overlap",
        "bench,config,fabric,p,elapsed_ns,steal_lat_ns,steals_ok,max_inflight,speedup,steal_lat_ratio",
    );
    println!(
        "{:<10} {:<10} {:>10} {:>12} {:>12} {:>8} {:>9} {:>8} {:>9}",
        "bench", "config", "fabric", "elapsed", "steal-lat", "steals", "inflight", "speedup", "lat-ratio"
    );

    let mut fig6_wins = 0usize;
    for (ci, cfg) in CONFIGS.iter().enumerate() {
        let (be, bl, _, _) = mean(ci, 0);
        for (mi, mode) in MODES.iter().enumerate() {
            let (e, l, s, d) = mean(ci, mi);
            let speedup = be.as_ns() as f64 / e.as_ns() as f64;
            let lat_ratio = if bl.as_ns() == 0 {
                1.0
            } else {
                l.as_ns() as f64 / bl.as_ns() as f64
            };
            if mi == 1 && e < be && l < bl {
                fig6_wins += 1;
            }
            println!(
                "{:<10} {:<10} {:>10} {:>12} {:>12} {:>8} {:>9} {:>7.3}x {:>9.3}",
                "recpfor", cfg.name, mode.label(), e.to_string(), l.to_string(), s, d, speedup, lat_ratio
            );
            csv.row(&[
                &"recpfor",
                &cfg.name,
                &mode.label(),
                &p,
                &e.as_ns(),
                &l.as_ns(),
                &s,
                &d,
                &format!("{speedup:.4}"),
                &format!("{lat_ratio:.4}"),
            ]);
        }
    }
    assert!(
        fig6_wins >= 1,
        "acceptance: pipelining must lower both makespan and mean steal \
         latency on at least one Fig. 6 configuration (got {fig6_wins})"
    );

    // Fig. 6 revisited with probe rings: the same five configurations on
    // the pipelined fabric with K ∈ {1, 2, 4} steal probes in flight,
    // the ring's verbs doorbell-chained at 0.25× injection. K = 1 is the
    // serial idle loop; K ≥ 2 probes that many victims at once, commits
    // the first in ring order that has work (its won lock freezes the
    // bounds, so the take skips one small-get round trip) and cancels the
    // rest — ready-but-unused victims are counted as `abandoned`, never as
    // latency samples.
    const KS: [u32; 3] = [1, 2, 4];
    let mut kcells: Vec<(usize, usize, u64)> = Vec::new();
    for ci in 0..CONFIGS.len() {
        for ki in 0..KS.len() {
            for rep in 0..REPS {
                kcells.push((ci, ki, rep));
            }
        }
    }
    // (elapsed, mean steal latency, steals, abandoned, chained verbs).
    type KCell = (VTime, VTime, u64, u64, u64);
    let kraw: Vec<KCell> = sweep::run_matrix(&kcells, jobs, |_, &(ci, ki, rep)| {
        let cfg = &CONFIGS[ci];
        let r = run(
            RunConfig::new(p, cfg.policy)
                .with_profile(profile.clone())
                .with_free_strategy(cfg.free)
                .with_fabric(FabricMode::Pipelined)
                .with_multi_steal(KS[ki])
                .with_doorbell(0.25)
                .with_seed(0x5EED + rep)
                .with_seg_bytes(64 << 20),
            recpfor_program(params),
        );
        assert!(
            r.outcome.is_complete(),
            "{} K={}: run completes",
            cfg.name,
            KS[ki]
        );
        (
            r.elapsed,
            r.stats.avg_steal_latency(),
            r.stats.steals_ok,
            r.stats.steals_abandoned,
            r.fabric.doorbell_chained,
        )
    });
    let kmean = |ci: usize, ki: usize| -> KCell {
        let base = (ci * KS.len() + ki) * REPS as usize;
        let (mut e, mut l, mut s, mut a, mut c) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for r in 0..REPS as usize {
            let (re, rl, rs, ra, rc) = kraw[base + r];
            e += re.as_ns();
            l += rl.as_ns();
            s += rs;
            a += ra;
            c += rc;
        }
        (
            VTime::ns(e / REPS),
            VTime::ns(l / REPS),
            s / REPS,
            a / REPS,
            c / REPS,
        )
    };

    let mut kcsv = Csv::create(
        "ablate_overlap_k",
        "bench,config,k,p,elapsed_ns,steal_lat_ns,steals_ok,abandoned,doorbell_chained,speedup,steal_lat_ratio",
    );
    println!(
        "\n{:<10} {:<10} {:>3} {:>12} {:>12} {:>8} {:>9} {:>9} {:>8} {:>9}",
        "bench", "config", "k", "elapsed", "steal-lat", "steals", "abandon", "chained", "speedup", "lat-ratio"
    );
    let mut k4_lat_wins = 0usize;
    let (mut chained_total, mut abandoned_total) = (0u64, 0u64);
    for (ci, cfg) in CONFIGS.iter().enumerate() {
        let (be, bl, _, _, _) = kmean(ci, 0);
        for (ki, &k) in KS.iter().enumerate() {
            let (e, l, s, a, c) = kmean(ci, ki);
            let speedup = be.as_ns() as f64 / e.as_ns() as f64;
            let lat_ratio = if bl.as_ns() == 0 {
                1.0
            } else {
                l.as_ns() as f64 / bl.as_ns() as f64
            };
            if k == 4 && l < bl {
                k4_lat_wins += 1;
            }
            if k >= 2 {
                chained_total += c;
                abandoned_total += a;
            }
            println!(
                "{:<10} {:<10} {:>3} {:>12} {:>12} {:>8} {:>9} {:>9} {:>7.3}x {:>9.3}",
                "recpfor", cfg.name, k, e.to_string(), l.to_string(), s, a, c, speedup, lat_ratio
            );
            kcsv.row(&[
                &"recpfor",
                &cfg.name,
                &k,
                &p,
                &e.as_ns(),
                &l.as_ns(),
                &s,
                &a,
                &c,
                &format!("{speedup:.4}"),
                &format!("{lat_ratio:.4}"),
            ]);
        }
    }
    assert!(
        k4_lat_wins >= 4,
        "acceptance: a K = 4 probe ring must lower mean steal latency \
         against K = 1 on at least four of the five Fig. 6 configurations \
         (got {k4_lat_wins})"
    );
    assert!(
        chained_total > 0,
        "acceptance: probe rings must actually ride doorbell chains"
    );
    assert!(
        abandoned_total > 0,
        "acceptance: some ready victims must have been abandoned (K \
         probes racing dense steals), and the counter must account them"
    );
    println!("\nK-sweep CSV written to {}", kcsv.path());

    // Fig. 8: UTS-L through the one-sided BoT, both fabric modes.
    let bot: Vec<Cell> = sweep::run_matrix(&[0usize, 1], jobs, |_, &mi| {
        let r = onesided::run_uts_fabric(&spec, p, profile.clone(), 5, MODES[mi]);
        assert_eq!(
            r.nodes, info.nodes,
            "one-sided BoT ({}): node count must match the serial tree",
            MODES[mi].label()
        );
        (r.elapsed, VTime::ZERO, r.steals_ok, r.fabric.max_inflight)
    });
    let (be, _, _, _) = bot[0];
    for (mi, mode) in MODES.iter().enumerate() {
        let (e, _, s, d) = bot[mi];
        let speedup = be.as_ns() as f64 / e.as_ns() as f64;
        println!(
            "{:<10} {:<10} {:>10} {:>12} {:>12} {:>8} {:>9} {:>7.3}x {:>9}",
            "uts-l", "bot-1sided", mode.label(), e.to_string(), "-", s, d, speedup, "-"
        );
        csv.row(&[
            &"uts-l",
            &"bot-1sided",
            &mode.label(),
            &p,
            &e.as_ns(),
            &0u64,
            &s,
            &d,
            &format!("{speedup:.4}"),
            &"",
        ]);
    }
    assert!(
        bot[1].0 < bot[0].0,
        "acceptance: the pipelined steal-half must shorten the UTS-L \
         makespan ({} vs {})",
        bot[1].0,
        bot[0].0
    );

    println!("\nCSV written to {}", csv.path());
    println!("Expected shape: pipelined runs post the release/result verb alongside");
    println!("the payload transfer, so mean steal latency drops by roughly one");
    println!("one-way latency and the makespan follows wherever steals are dense.");
}
