//! Ablation — steal-half versus steal-one in the one-sided bag-of-tasks
//! runtime (the Dinan et al. / Hendler & Shavit design point SAWS builds
//! on).
//!
//! On UTS the contrast is subtler than on flat bags — a single stolen node
//! roots an entire subtree — so the effect shows up at larger worker
//! counts, where steal-half pre-distributes enough nodes to absorb the
//! irregular subtree sizes while steal-one keeps going back to the well.

use dcs_apps::uts::{self, presets};
use dcs_bench::{mnodes, quick, sweep, Csv};
use dcs_bot::onesided::{run_uts_with, StealAmount};
use dcs_sim::profiles;

fn main() {
    let jobs = sweep::jobs_or_exit();
    let spec = if quick() { presets::tiny() } else { presets::medium() };
    let info = uts::serial_count(&spec);
    let ps: &[usize] = if quick() { &[4, 8] } else { &[16, 64, 256] };
    let mut csv = Csv::create(
        "ablate_stealhalf",
        "amount,p,throughput_mnodes_s,steals_ok,steals_failed",
    );

    println!(
        "=== steal-half vs steal-one (one-sided BoT, UTS {} nodes) ===\n",
        info.nodes
    );
    println!(
        "{:>5} {:<12} {:>14} {:>10} {:>10}",
        "P", "amount", "throughput", "#steal", "#failed"
    );
    let mut cells: Vec<(usize, StealAmount)> = Vec::new();
    for &p in ps {
        for amount in [StealAmount::Half, StealAmount::One] {
            cells.push((p, amount));
        }
    }
    let reports = sweep::run_matrix(&cells, jobs, |_, &(p, amount)| {
        let r = run_uts_with(&spec, p, profiles::itoa(), 5, amount);
        assert_eq!(r.nodes, info.nodes);
        r
    });

    let mut next = 0usize;
    for &p in ps {
        for amount in [StealAmount::Half, StealAmount::One] {
            let r = &reports[next];
            next += 1;
            let tp = mnodes(r.nodes, r.elapsed);
            println!(
                "{:>5} {:<12} {:>11.2} Mn {:>10} {:>10}",
                p,
                format!("{amount:?}"),
                tp,
                r.steals_ok,
                r.steals_failed
            );
            csv.row(&[
                &format!("{amount:?}"),
                &p,
                &format!("{tp:.3}"),
                &r.steals_ok,
                &r.steals_failed,
            ]);
        }
    }
    assert_eq!(next, reports.len(), "render walked the whole matrix");
    println!("\nCSV written to {}", csv.path());
}
