//! Unbalanced Tree Search: fork-join continuation stealing versus
//! bag-of-tasks runtimes, across worker counts.
//!
//! ```text
//! cargo run --release --example uts_scaling
//! ```
//!
//! This is a miniature of the paper's Fig. 8: the same UTS tree is counted
//! by four runtimes — our fork-join continuation-stealing runtime, a
//! SAWS-like one-sided steal-half bag of tasks, a Charm++-like two-sided
//! random-stealing bag, and an X10/GLB-like lifeline bag — and each must
//! produce the identical node count. Throughput is nodes per second of
//! virtual time.

use dcs::apps::uts::{self, serial_vtime};
use dcs::bot;
use dcs::prelude::*;

fn main() {
    let spec = uts::presets::small();
    let info = uts::serial_count(&spec);
    let profile = profiles::itoa();
    println!(
        "UTS geometric tree: {} nodes, depth {} (T1L-analogue), ITO-A profile",
        info.nodes, info.max_depth
    );
    let t_serial = serial_vtime(&spec, profile.compute_scale);
    println!(
        "serial traversal: {} ({:.2} Mnodes/s)\n",
        t_serial,
        info.nodes as f64 / t_serial.as_secs_f64() / 1e6
    );

    println!(
        "{:>4} {:>16} {:>16} {:>16} {:>16}",
        "P", "cont-steal", "bot-onesided", "bot-twosided", "bot-lifeline"
    );

    for p in [1usize, 2, 4, 8, 16, 32] {
        let mnodes = |nodes: u64, t: VTime| nodes as f64 / t.as_secs_f64() / 1e6;

        let fj = run(
            RunConfig::new(p, Policy::ContGreedy).with_profile(profile.clone()),
            uts::program(spec.clone()),
        );
        assert_eq!(fj.result.as_u64(), info.nodes);

        let os = bot::onesided::run_uts(&spec, p, profile.clone(), 1);
        assert_eq!(os.nodes, info.nodes);

        let ts = bot::twosided::run_uts(
            &spec,
            p,
            profile.clone(),
            bot::twosided::Variant::Random,
            1,
        );
        assert_eq!(ts.nodes, info.nodes);

        let ll = bot::twosided::run_uts(
            &spec,
            p,
            profile.clone(),
            bot::twosided::Variant::Lifeline,
            1,
        );
        assert_eq!(ll.nodes, info.nodes);

        println!(
            "{:>4} {:>10.2} Mn/s {:>10.2} Mn/s {:>10.2} Mn/s {:>10.2} Mn/s",
            p,
            mnodes(info.nodes, fj.elapsed),
            mnodes(os.nodes, os.elapsed),
            mnodes(ts.nodes, ts.elapsed),
            mnodes(ll.nodes, ll.elapsed),
        );
    }

    println!("\nall four runtimes agree on the node count — the BoT runtimes");
    println!("additionally needed distributed termination detection before");
    println!("their per-worker counts could be reduced.");
}
