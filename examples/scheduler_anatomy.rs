//! Scheduler anatomy: one workload, four policies, full instrumentation.
//!
//! ```text
//! cargo run --release --example scheduler_anatomy
//! ```
//!
//! Runs RecPFor (the paper's complicated-join benchmark) under all four
//! scheduling policies with series-level tracing and prints, per policy:
//! the Table-II style counters, the DelaySpotter-style breakdown of idle
//! time (how much of it is the *scheduler's fault* — idle workers
//! coexisting with ready-but-unexecuted joins), and a Chrome trace file
//! you can open in chrome://tracing or https://ui.perfetto.dev.

use dcs::apps::pfor::{recpfor_program, PforParams};
use dcs::core::chrome_trace;
use dcs::prelude::*;

fn main() {
    let workers = 32;
    let params = PforParams {
        n: 1 << 9,
        k: 3,
        m: VTime::us(10),
    };
    let t1 = params.recpfor_t1(1.0);
    println!(
        "RecPFor N=2^9 (T1 = {t1}), {workers} workers, ITO-A profile\n"
    );
    println!(
        "{:<24} {:>10} {:>9} {:>10} {:>12} {:>14}",
        "policy", "elapsed", "#steals", "#outjoin", "avg oj time", "sched-delay"
    );

    for policy in Policy::ALL {
        let cfg = RunConfig::new(workers, policy)
            .with_trace(TraceLevel::Series)
            .with_seg_bytes(64 << 20);
        let r = run(cfg, recpfor_program(params));
        let delay = r
            .stats
            .delay_report(r.elapsed, workers)
            .expect("series tracing enabled");
        println!(
            "{:<24} {:>10} {:>9} {:>10} {:>12} {:>10} ({:>4.1}%)",
            policy.label(),
            r.elapsed.to_string(),
            r.stats.steals_ok,
            r.stats.outstanding_joins,
            r.stats.avg_outstanding_time().to_string(),
            delay.scheduler_delay.to_string(),
            100.0 * delay.blame_fraction,
        );
        let path = format!(
            "/tmp/dcs_anatomy_{}.json",
            policy.label().replace([' ', '.', '(', ')'], "_")
        );
        if let Some(json) = chrome_trace(&r.stats, policy.label()) {
            if std::fs::write(&path, json).is_ok() {
                println!("{:<24} trace: {path}", "");
            }
        }
    }

    println!("\nhow to read this:");
    println!("- outstanding joins: suspensions caused by steals (Table II);");
    println!("- sched-delay: idle time that ready joins could have filled");
    println!("  (Huynh & Taura's DelaySpotter metric, the paper's [50]);");
    println!("- greedy join keeps the blame fraction in single digits, the");
    println!("  stalling/tied policies push it toward 'most of the idleness'.");
}
