//! A tour of the simulated machine: what the runtime is built on.
//!
//! ```text
//! cargo run --release --example machine_tour
//! ```
//!
//! Shows the one-sided verbs, their calibrated costs on both machine
//! profiles, the uni-address versus iso-address address-space behaviour,
//! and the two remote-object freeing strategies — the substrates behind
//! every number in the paper reproduction.

use dcs::prelude::*;
use dcs::sim::{Machine, MachineConfig};
use dcs::uniaddr::{IsoAlloc, UniRegion};

fn main() {
    println!("== one-sided verb costs ==\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "profile", "local op", "small get", "atomic", "get 56 B", "get 1.8 kB"
    );
    for profile in [profiles::itoa(), profiles::wisteria()] {
        let l = &profile.latency;
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>14} {:>14}",
            profile.name,
            l.local().to_string(),
            l.get_small().to_string(),
            l.amo().to_string(),
            l.get_bulk(56).to_string(),
            l.get_bulk(1800).to_string(),
        );
    }
    println!("\n(56 B = a child-stealing task descriptor; 1.8 kB = a typical");
    println!(" migrated continuation stack — <20% extra steal latency.)\n");

    println!("== verbs in action ==\n");
    let mut m = Machine::new(MachineConfig::new(2, profiles::itoa()).with_seg_bytes(1 << 16));
    let flag = m.alloc(1, 8); // worker 1 owns a flag word
    let (old, cost) = m.fetch_add_u64(0, flag, 1);
    println!("worker 0: fetch_add on worker 1's flag: old={old}, cost={cost}");
    let (v, cost) = m.get_u64(0, flag);
    println!("worker 0: get the flag:                 v={v},   cost={cost}");
    let (v, cost) = m.get_u64(1, flag);
    println!("worker 1: get its own flag:             v={v},   cost={cost} (local)");
    let s = m.stats(0);
    println!(
        "worker 0 fabric counters: {} gets, {} atomics, {} bytes read\n",
        s.remote_gets, s.remote_amos, s.bytes_got
    );

    println!("== uni-address vs iso-address ==\n");
    const SLOT: u64 = 16 << 10;
    let mut uni = UniRegion::with_default_base(1 << 30);
    let mut iso = IsoAlloc::new();
    // Simulate 10 000 short-lived threads at nesting depth ≤ 3.
    for _ in 0..10_000 {
        let a = uni.place_child(None, SLOT);
        let b = uni.place_child(Some(a), SLOT);
        let c = uni.place_child(Some(b), SLOT);
        let (ia, ib, ic) = (iso.alloc(SLOT), iso.alloc(SLOT), iso.alloc(SLOT));
        uni.release(c);
        uni.release(b);
        uni.release(a);
        iso.free(ic);
        iso.free(ib);
        iso.free(ia);
    }
    println!(
        "uni-address pinned peak: {:>12} bytes (bounded by live depth)",
        uni.stats().peak_bytes
    );
    println!(
        "iso-address pinned peak: {:>12} bytes (grows with total threads)",
        iso.peak_bytes()
    );
    println!("\nthis is §II-D's motivation: RDMA needs stacks pinned, and the");
    println!("iso-address scheme would pin address space proportional to every");
    println!("thread ever created across the whole job.");
}
