//! LCS with futures: why task migration at joins matters.
//!
//! ```text
//! cargo run --release --example lcs_wavefront
//! ```
//!
//! The longest-common-subsequence table has wavefront dependencies that
//! strict fork-join cannot express without stretching the critical path.
//! The `dcs` runtime's futures (thread handles passed as first-class
//! values, with a consumer count fixed at spawn) express the wavefront
//! directly; this example reproduces the *shape* of the paper's Table III:
//! greedy-join continuation stealing ≫ stalling join ≫ child stealing.

use dcs::apps::lcs::{self, LcsParams};
use dcs::prelude::*;

fn main() {
    let n = 1 << 12;
    let c = 1 << 8;
    let params = LcsParams::random(n, c, 7);
    let expected = lcs::lcs_reference(&params.a, &params.b) as u64;
    let profile = profiles::itoa();
    let workers = 16;

    println!("LCS, N = 2^12, C = 2^8, {} workers, ITO-A profile", workers);
    println!(
        "T1 = {}, T∞ = {}, reference LCS length = {expected}\n",
        params.t1(profile.compute_scale),
        params.t_inf(profile.compute_scale)
    );

    let lower = params
        .t1(profile.compute_scale)
        .max(params.t_inf(profile.compute_scale))
        / workers as u64;

    println!(
        "{:<26} {:>12} {:>14} {:>16}",
        "policy", "elapsed", "vs T1/P bound", "outstanding joins"
    );
    for policy in [Policy::ContGreedy, Policy::ContStalling, Policy::ChildFull] {
        let cfg = RunConfig::new(workers, policy).with_profile(profile.clone());
        let report = run(cfg, lcs::program(params.clone()));
        assert_eq!(report.result.as_u64(), expected, "{policy:?}");
        println!(
            "{:<26} {:>12} {:>13.2}x {:>16}",
            policy.label(),
            report.elapsed.to_string(),
            report.elapsed.as_ns() as f64 / (params.t1(profile.compute_scale) / workers as u64).as_ns() as f64,
            report.stats.outstanding_joins,
        );
    }

    println!("\ngreedy-scheduling lower bound max(T1/P, T∞) = {lower}");
    println!("greedy join stays near the bound; the stalling join and the");
    println!("tied child-stealing tasks leave ready work stranded at joins.");
}
