//! Quickstart: write a fork-join program, run it under every scheduling
//! policy, and read the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The program is a parallel pairwise sum over an implicit array — the
//! "hello world" of fork-join runtimes. Task code is continuation-passing:
//! a task is a plain `fn(Value, &mut TaskCtx) -> Effect`, and the rest of a
//! task after a spawn/join/compute is a closure boxed with `frame` (that
//! closure *is* the migratable stack frame).

use dcs::prelude::*;

/// Sum the range `[lo, hi)` of `f(i) = i²` by binary fork-join, computing
/// 1 µs of virtual work per leaf.
fn sum_squares(arg: Value, _ctx: &mut TaskCtx) -> Effect {
    let (lo, hi) = arg.into_pair();
    let (lo, hi) = (lo.as_u64(), hi.as_u64());
    if hi - lo == 1 {
        // Leaf: charge 1 µs of compute, then return i².
        return Effect::compute(
            VTime::us(1),
            frame(move |_, _| Effect::ret(lo * lo)),
        );
    }
    let mid = lo + (hi - lo) / 2;
    // spawn left half…
    Effect::fork(
        sum_squares,
        Value::pair(lo.into(), mid.into()),
        frame(move |handle, _| {
            let handle = handle.as_handle();
            // …run the right half ourselves (ordinary call)…
            Effect::call(
                sum_squares,
                Value::pair(mid.into(), hi.into()),
                frame(move |right, _| {
                    let right = right.as_u64();
                    // …then join the spawned half and combine.
                    Effect::join(
                        handle,
                        frame(move |left, _| Effect::ret(left.as_u64() + right)),
                    )
                }),
            )
        }),
    )
}

fn main() {
    const N: u64 = 4096;
    let expected: u64 = (0..N).map(|i| i * i).sum();

    println!("parallel sum of squares, N = {N}, 16 simulated workers\n");
    println!(
        "{:<26} {:>12} {:>10} {:>10} {:>12}",
        "policy", "elapsed", "steals", "avg stolen", "efficiency"
    );

    // T1 = N leaves × 1 µs; ideal time on P workers is T1/P.
    let ideal = VTime::us(N) / 16;

    for policy in [
        Policy::ContGreedy,
        Policy::ContStalling,
        Policy::ChildFull,
        Policy::ChildRtc,
    ] {
        let cfg = RunConfig::new(16, policy);
        let report = run(
            cfg,
            Program::new(sum_squares, Value::pair(0u64.into(), N.into())),
        );
        assert_eq!(report.result.as_u64(), expected);
        println!(
            "{:<26} {:>12} {:>10} {:>8} B {:>11.1}%",
            policy.label(),
            report.elapsed.to_string(),
            report.stats.steals_ok,
            report.stats.avg_stolen_bytes(),
            100.0 * report.efficiency(ideal),
        );
    }

    println!("\nresult = {expected} (verified under every policy)");
    println!("note: continuation steals move whole stacks (~1–2 kB);");
    println!("child steals move 55-byte descriptors — yet the join behaviour");
    println!("decides overall performance (see the fig6/table2 benches).");
}
