//! Global-heap programming: distributed SAXPY over a PGAS array.
//!
//! ```text
//! cargo run --release --example pgas_saxpy
//! ```
//!
//! The paper's benchmarks pass data only through task arguments and return
//! values and defer global heaps to future work (§VII). `dcs-pgas` provides
//! that layer: block-distributed arrays in the workers' pinned segments,
//! accessed from task code with one-sided RMA effects that the fabric
//! charges like every other verb. This example computes
//! `y ← y + a·x` over 64 k elements with fork-join tasks doing bulk
//! block transfers, then verifies against the host.

use std::sync::Arc;

use dcs::core::layout::SegLayout;
use dcs::core::run_full;
use dcs::pgas::{Dist, GlobalVec};
use dcs::prelude::*;
use dcs::sim::{Machine, MachineConfig};

struct App {
    x: GlobalVec,
    y: GlobalVec,
    a: u64,
    chunk: u64,
}

fn chunk_task(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let (lo, hi) = arg.into_pair();
    let (lo, hi) = (lo.as_u64(), hi.as_u64());
    let app = ctx.app::<App>();
    let (x, y, a, n) = (app.x, app.y, app.a, hi - lo);
    Effect::rma(
        x.get_range(lo, n),
        frame(move |xs, _| {
            let xs = Arc::clone(xs.as_u64s());
            Effect::rma(
                y.get_range(lo, n),
                frame(move |ys, _| {
                    let out: Arc<[u64]> = ys
                        .as_u64s()
                        .iter()
                        .zip(xs.iter())
                        .map(|(&yv, &xv)| yv + a * xv)
                        .collect();
                    Effect::rma(y.put_range(lo, out), frame(|_, _| Effect::ret(Value::Unit)))
                }),
            )
        }),
    )
}

fn range_task(arg: Value, ctx: &mut TaskCtx) -> Effect {
    let (lo, hi) = arg.into_pair();
    let (lo, hi) = (lo.as_u64(), hi.as_u64());
    let chunk = ctx.app::<App>().chunk;
    if hi - lo <= chunk {
        return chunk_task(Value::pair(lo.into(), hi.into()), ctx);
    }
    let mid = lo + ((hi - lo) / chunk / 2).max(1) * chunk;
    Effect::fork(
        range_task,
        Value::pair(lo.into(), mid.into()),
        frame(move |h, _| {
            let h = h.as_handle();
            Effect::call(
                range_task,
                Value::pair(mid.into(), hi.into()),
                frame(move |_, _| Effect::join(h, frame(|_, _| Effect::ret(Value::Unit)))),
            )
        }),
    )
}

fn main() {
    let n: u64 = 1 << 16;
    let workers = 32;
    let chunk: u64 = 256;
    let a = 3u64;
    let cfg = RunConfig::new(workers, Policy::ContGreedy).with_seg_bytes(64 << 20);

    // GlobalVec metadata is layout-deterministic: plan on a scratch machine,
    // allocate for real in the init hook.
    let mut scratch = Machine::new(
        MachineConfig::new(workers, cfg.profile.clone())
            .with_seg_bytes(cfg.seg_bytes)
            .with_reserved(SegLayout::new(&cfg).reserved),
    );
    let x = GlobalVec::alloc(&mut scratch, n, Dist::Block);
    let y = GlobalVec::alloc(&mut scratch, n, Dist::Block);

    let xs: Vec<u64> = (0..n).map(|i| i % 1009).collect();
    let ys: Vec<u64> = (0..n).map(|i| 7 * i % 2003).collect();
    let (xi, yi) = (xs.clone(), ys.clone());

    let program = Program::new(range_task, Value::pair(0u64.into(), n.into()))
        .with_app(App { x, y, a, chunk })
        .with_init(move |m| {
            let x2 = GlobalVec::alloc(m, n, Dist::Block);
            let y2 = GlobalVec::alloc(m, n, Dist::Block);
            x2.fill(m, &xi);
            y2.fill(m, &yi);
        });

    let (report, machine) = run_full(cfg, program);
    let got = y.to_vec(&machine);
    let expect: Vec<u64> = ys.iter().zip(&xs).map(|(&yv, &xv)| yv + a * xv).collect();
    assert_eq!(got, expect);

    println!("SAXPY over {n} global elements, {workers} workers (ITO-A profile)");
    println!("elapsed:          {}", report.elapsed);
    println!("tasks spawned:    {}", report.threads);
    println!("steals:           {}", report.stats.steals_ok);
    println!(
        "remote ops:       {} ({} KiB moved)",
        report.fabric.remote_total(),
        (report.fabric.bytes_got + report.fabric.bytes_put) / 1024
    );
    println!("result verified against host computation ✓");
    println!("\neach chunk task does three bulk RMAs (get x, get y, put y);");
    println!("work stealing balances chunks while the fabric charges every");
    println!("transfer — the global-heap layer the paper leaves as future work.");
}
