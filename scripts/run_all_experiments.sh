#!/usr/bin/env bash
# Regenerate every table and figure. Outputs land in results/*.csv and
# results/*.txt. Full run takes tens of minutes on one core; set DCS_QUICK=1
# for a minutes-long smoke pass.
#
# Each bin fans its independent simulations across host threads. Pass
# --jobs N (or set DCS_JOBS) to pin the thread count; the default is the
# host's available cores. Output is byte-identical for any value.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS_ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs|-j)
            JOBS_ARGS=(--jobs "$2")
            shift 2
            ;;
        --jobs=*)
            JOBS_ARGS=(--jobs "${1#--jobs=}")
            shift
            ;;
        *)
            echo "usage: $0 [--jobs N]" >&2
            exit 2
            ;;
    esac
done

cargo build --release -p dcs-bench

mkdir -p results
for bin in fig6 fig6_protocols table2 fig7 fig8 fig9 table3 fig12 ablate_free ablate_join ablate_uniaddr ablate_topology ablate_stealhalf ablate_faults ablate_recovery ablate_suspicion ablate_overlap; do
    echo "=== running $bin ==="
    start=$(date +%s)
    ./target/release/$bin "${JOBS_ARGS[@]}" 2>&1 | tee "results/$bin.txt"
    echo "($(( $(date +%s) - start )) s host time for $bin)"
done

# Host-side self-benchmark: worker-scaling sweep (1k/10k/100k, the engine
# O(active) headline) + engine throughput + sweep-harness speedup. Writes
# BENCH_simperf.json at the repo root (committed trajectory).
echo "=== running selfbench ==="
start=$(date +%s)
./target/release/selfbench "${JOBS_ARGS[@]}" 2>&1 | tee "results/selfbench.txt"
echo "($(( $(date +%s) - start )) s host time for selfbench)"
echo "All experiments complete; see results/."
