#!/usr/bin/env bash
# Regenerate every table and figure. Outputs land in results/*.csv and
# results/*.txt. Full run takes tens of minutes on one core; set DCS_QUICK=1
# for a minutes-long smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p dcs-bench

mkdir -p results
for bin in fig6 table2 fig7 fig8 fig9 table3 fig12 ablate_free ablate_join ablate_uniaddr ablate_topology ablate_stealhalf ablate_faults; do
    echo "=== running $bin ==="
    start=$(date +%s)
    ./target/release/$bin 2>&1 | tee "results/$bin.txt"
    echo "($(( $(date +%s) - start )) s host time for $bin)"
done
echo "All experiments complete; see results/."
