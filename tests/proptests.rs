//! Property-based tests over the whole stack (proptest).
//!
//! Strategy: generate random workload shapes, worker counts, policies and
//! seeds; assert the invariants the runtime must keep regardless of
//! schedule — result correctness, conservation of threads/entries (enforced
//! internally by strict mode), the work law, and determinism.

use proptest::prelude::*;

use dcs::apps::lcs::{self, LcsParams};
use dcs::apps::uts::{serial_count, Shape, UtsSpec};
use dcs::bot;
use dcs::prelude::*;

fn any_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::ContGreedy),
        Just(Policy::ContStalling),
        Just(Policy::ChildFull),
        Just(Policy::ChildRtc),
    ]
}

/// Random fork-join reduction: sum of i² over a random-size range, random
/// branching in the task tree via an uneven split.
fn sum_task(arg: Value, _ctx: &mut TaskCtx) -> Effect {
    let (lo, hi) = arg.into_pair();
    let (lo, hi) = (lo.as_u64(), hi.as_u64());
    if hi - lo <= 1 {
        return Effect::ret(lo * lo);
    }
    // Uneven split (1/3 : 2/3) exercises imbalanced schedules.
    let mid = lo + 1 + (hi - lo - 1) / 3;
    Effect::fork(
        sum_task,
        Value::pair(lo.into(), mid.into()),
        frame(move |h, _| {
            let h = h.as_handle();
            Effect::call(
                sum_task,
                Value::pair(mid.into(), hi.into()),
                frame(move |r, _| {
                    let r = r.as_u64();
                    Effect::join(h, frame(move |l, _| Effect::ret(l.as_u64() + r)))
                }),
            )
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fork-join reduction is correct for every (policy, P, size, seed).
    #[test]
    fn forkjoin_reduction_correct(
        policy in any_policy(),
        workers in 1usize..9,
        n in 2u64..400,
        seed in 0u64..1000,
    ) {
        let cfg = RunConfig::new(workers, policy)
            .with_profile(profiles::test_profile())
            .with_seed(seed)
            .with_seg_bytes(64 << 20);
        let r = run(cfg, Program::new(sum_task, Value::pair(0u64.into(), n.into())));
        let expected: u64 = (0..n).map(|i| i * i).sum();
        prop_assert_eq!(r.result.as_u64(), expected);
        // Strict mode already asserted no leaks; double-check the counters.
        prop_assert_eq!(r.stats.threads_spawned, r.stats.threads_died);
    }

    /// Random UTS trees: fork-join count equals serial count; the one-sided
    /// BoT agrees too.
    #[test]
    fn uts_counts_agree(
        b0 in 2u32..6,
        gen_mx in 2u32..7,
        tree_seed in 0u64..500,
        workers in 1usize..7,
        fixed in proptest::bool::ANY,
    ) {
        let shape = if fixed { Shape::Fixed } else { Shape::Linear };
        let spec = UtsSpec::new(b0 as f64, gen_mx, shape, tree_seed);
        let expected = serial_count(&spec).nodes;
        let r = run(
            RunConfig::new(workers, Policy::ContGreedy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20),
            dcs::apps::uts::program(spec.clone()),
        );
        prop_assert_eq!(r.result.as_u64(), expected);
        let os = bot::onesided::run_uts(&spec, workers, profiles::test_profile(), tree_seed);
        prop_assert_eq!(os.nodes, expected);
    }

    /// LCS through the future machinery equals the reference DP for random
    /// sizes, block sizes, alphabets and schedules.
    #[test]
    fn lcs_matches_reference(
        n_log in 3u32..7,
        c_log in 2u32..5,
        alphabet in 2u8..8,
        workers in 1usize..7,
        seed in 0u64..500,
        policy in prop_oneof![
            Just(Policy::ContGreedy),
            Just(Policy::ContStalling),
            Just(Policy::ChildFull),
        ],
    ) {
        let n = 1u64 << n_log;
        let c = (1u64 << c_log).min(n);
        let params = LcsParams::random_alpha(n, c, seed, alphabet);
        let expected = lcs::lcs_reference(&params.a, &params.b) as u64;
        let r = run(
            RunConfig::new(workers, policy)
                .with_profile(profiles::test_profile())
                .with_seed(seed)
                .with_seg_bytes(64 << 20),
            lcs::program(params),
        );
        prop_assert_eq!(r.result.as_u64(), expected);
    }

    /// The work law T_P ≥ T1/P and the busy-time identity
    /// Σ busy ≤ P × elapsed hold for every schedule.
    #[test]
    fn time_accounting_sane(
        policy in any_policy(),
        workers in 1usize..9,
        seed in 0u64..100,
    ) {
        let params = dcs::apps::pfor::PforParams { n: 64, k: 2, m: VTime::us(5) };
        let r = run(
            RunConfig::new(workers, policy)
                .with_profile(profiles::itoa())
                .with_seed(seed)
                .with_seg_bytes(64 << 20),
            dcs::apps::pfor::pfor_program(params),
        );
        let t1 = params.pfor_t1(1.0);
        prop_assert!(r.elapsed >= t1 / workers as u64);
        prop_assert!(r.busy_total.as_ns() <= r.elapsed.as_ns() * workers as u64);
        // Busy time must at least cover the pure compute work.
        prop_assert!(r.busy_total >= t1);
    }

    /// Under randomized transient-fault schedules (verb failures, message
    /// drops and duplications) every runtime still terminates and produces
    /// the exact serial UTS node count — faults may only cost time.
    #[test]
    fn uts_counts_survive_random_faults(
        b0 in 2u32..5,
        gen_mx in 2u32..6,
        tree_seed in 0u64..200,
        workers in 2usize..7,
        policy in any_policy(),
        fault_permille in 5u64..120,
        fault_seed in 0u64..1000,
    ) {
        let spec = UtsSpec::new(b0 as f64, gen_mx, Shape::Linear, tree_seed);
        let expected = serial_count(&spec).nodes;
        let plan = FaultPlan::transient(fault_permille as f64 / 1000.0, fault_seed);
        let r = run(
            RunConfig::new(workers, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20)
                .with_fault_plan(plan.clone()),
            dcs::apps::uts::program(spec.clone()),
        );
        prop_assert_eq!(r.result.as_u64(), expected);
        if let Some(wd) = &r.watchdog {
            prop_assert!(wd.is_clean(), "watchdog: {}", wd);
        }
        let os = bot::onesided::run_uts_faulty(
            &spec,
            workers,
            profiles::test_profile(),
            tree_seed,
            bot::onesided::StealAmount::Half,
            plan.clone(),
        );
        prop_assert_eq!(os.nodes, expected);
        let ts = bot::twosided::run_uts_faulty(
            &spec,
            workers,
            profiles::test_profile(),
            bot::twosided::Variant::Lifeline,
            tree_seed,
            plan,
        );
        prop_assert_eq!(ts.nodes, expected);
    }

    /// LCS through the future machinery still equals the reference DP when
    /// the fabric injects transient faults.
    #[test]
    fn lcs_matches_reference_under_faults(
        n_log in 3u32..6,
        workers in 2usize..7,
        seed in 0u64..200,
        fault_permille in 5u64..100,
        policy in prop_oneof![
            Just(Policy::ContGreedy),
            Just(Policy::ContStalling),
            Just(Policy::ChildFull),
        ],
    ) {
        let n = 1u64 << n_log;
        let params = LcsParams::random_alpha(n, 4.min(n), seed, 4);
        let expected = lcs::lcs_reference(&params.a, &params.b) as u64;
        let r = run(
            RunConfig::new(workers, policy)
                .with_profile(profiles::test_profile())
                .with_seed(seed)
                .with_seg_bytes(64 << 20)
                .with_fault_plan(FaultPlan::transient(
                    fault_permille as f64 / 1000.0,
                    seed ^ 0xF00D,
                )),
            lcs::program(params),
        );
        prop_assert_eq!(r.result.as_u64(), expected);
    }

    /// The posted-verb refactor is conservative: for random verb sequences
    /// (mixed kinds, issuers, targets, faults), the blocking wrappers are
    /// bit-identical — in observed value, charged time, and FabricStats —
    /// to (a) manual post-at-ZERO + wait and (b) posting at a running
    /// absolute clock and charging `finish − now`. This is the contract
    /// that lets FabricMode::Blocking keep every golden valid.
    #[test]
    fn blocking_equals_posted(
        workers in 2usize..5,
        fault_permille in 0u64..80,
        fault_seed in 0u64..500,
        ops in proptest::collection::vec(
            (0u8..8, 0usize..4, 0u32..64, 1u64..1_000_000),
            1..40,
        ),
    ) {
        use dcs::sim::{FabricMode, GlobalAddr, Machine, MachineConfig};
        let mk = || {
            let mut cfg = MachineConfig::new(workers, profiles::itoa())
                .with_seg_bytes(1 << 20)
                .with_fabric(FabricMode::Pipelined);
            if fault_permille > 0 {
                cfg = cfg.with_faults(FaultPlan::transient(
                    fault_permille as f64 / 1000.0,
                    fault_seed,
                ));
            }
            Machine::new(cfg)
        };
        let (mut blk, mut posted, mut clocked) = (mk(), mk(), mk());
        let mut now = VTime::ZERO;
        for &(kind, tgt, woff, val) in &ops {
            let tgt = tgt % workers;
            let me = (tgt + val as usize) % workers; // sometimes local, sometimes remote
            let addr = GlobalAddr::new(tgt, 8 + woff * 8);
            let len = (val % 4096) as usize + 8;

            if kind == 6 {
                // Fence-free bounds/entry read: the 3-word span get must be
                // bit-identical across the three issue styles too.
                let (v_b, c_b) = blk.get_u64_span::<3>(me, addr);
                let (v_p, h) = posted.post_get_u64_span::<3>(me, addr, VTime::ZERO);
                let (_, c_p) = posted.wait(me, h);
                prop_assert_eq!(v_b, v_p, "span values diverged");
                prop_assert_eq!(c_b, c_p, "span cost diverged");
                let (v_c, h) = clocked.post_get_u64_span::<3>(me, addr, now);
                let (_, fin) = clocked.wait(me, h);
                prop_assert_eq!(v_b, v_c);
                prop_assert_eq!(fin.saturating_sub(now), c_b);
                now = fin;
                continue;
            }
            if kind == 7 {
                // Fence-free claim write: the unsignaled put is eager and
                // charges the same non-blocking injection on every machine.
                let c_b = blk.post_put_u64_unsignaled(me, addr, val);
                let c_p = posted.post_put_u64_unsignaled(me, addr, val);
                let c_c = clocked.post_put_u64_unsignaled(me, addr, val);
                prop_assert_eq!(c_b, c_p, "unsignaled cost diverged");
                prop_assert_eq!(c_b, c_c);
                now += c_c;
                continue;
            }

            // Blocking wrapper: (value, cost). Puts and bulks carry no value.
            let (v_b, c_b) = match kind {
                0 => blk.get_u64(me, addr),
                1 => (0, blk.put_u64(me, addr, val)),
                2 => blk.fetch_add_u64(me, addr, val),
                3 => blk.cas_u64(me, addr, val % 7, val),
                4 => (0, blk.get_bulk(me, tgt, len)),
                _ => (0, blk.put_bulk(me, tgt, len)),
            };

            // Manual post at VTime::ZERO + wait: finish IS the cost.
            let h = match kind {
                0 => posted.post_get_u64(me, addr, VTime::ZERO),
                1 => posted.post_put_u64(me, addr, val, VTime::ZERO),
                2 => posted.post_fetch_add_u64(me, addr, val, VTime::ZERO),
                3 => posted.post_cas_u64(me, addr, val % 7, val, VTime::ZERO),
                4 => posted.post_get_bulk(me, tgt, len, VTime::ZERO),
                _ => posted.post_put_bulk(me, tgt, len, VTime::ZERO),
            };
            let (v_p, c_p) = posted.wait(me, h);
            prop_assert_eq!(c_b, c_p, "cost diverged on kind {}", kind);
            if matches!(kind, 0 | 2 | 3) {
                prop_assert_eq!(v_b, v_p, "value diverged on kind {}", kind);
            }

            // Post at a running absolute clock: the relative charge
            // `finish − now` must equal the blocking cost (empty CQ, so the
            // same-QP clamp never engages).
            let h = match kind {
                0 => clocked.post_get_u64(me, addr, now),
                1 => clocked.post_put_u64(me, addr, val, now),
                2 => clocked.post_fetch_add_u64(me, addr, val, now),
                3 => clocked.post_cas_u64(me, addr, val % 7, val, now),
                4 => clocked.post_get_bulk(me, tgt, len, now),
                _ => clocked.post_put_bulk(me, tgt, len, now),
            };
            let (v_c, fin) = clocked.wait(me, h);
            prop_assert_eq!(fin.saturating_sub(now), c_b);
            if matches!(kind, 0 | 2 | 3) {
                prop_assert_eq!(v_b, v_c);
            }
            now = fin;
        }
        // Identical traffic ⇒ bit-identical per-worker fabric stats, and a
        // serial issue pattern never overlaps: depth 1, no CQ polls.
        for w in 0..workers {
            prop_assert_eq!(blk.stats(w), posted.stats(w));
            prop_assert_eq!(blk.stats(w), clocked.stats(w));
            prop_assert!(blk.stats(w).max_inflight <= 1);
            prop_assert_eq!(blk.stats(w).cq_polls, 0);
        }
    }

    /// Determinism: identical configuration ⇒ identical simulation.
    #[test]
    fn determinism(
        policy in any_policy(),
        workers in 2usize..8,
        seed in 0u64..100,
    ) {
        let mk = || {
            let spec = UtsSpec::new(3.0, 4, Shape::Linear, 11);
            run(
                RunConfig::new(workers, policy)
                    .with_profile(profiles::itoa())
                    .with_seed(seed)
                    .with_seg_bytes(64 << 20),
                dcs::apps::uts::program(spec),
            )
        };
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.elapsed, b.elapsed);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.stats.steals_ok, b.stats.steals_ok);
        prop_assert_eq!(a.stats.steals_failed, b.stats.steals_failed);
        prop_assert_eq!(a.fabric.bytes_got, b.fabric.bytes_got);
    }
}

// The protocol-agreement family runs all three steal families per case (six
// full simulations each), so it gets its own smaller case budget.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The three steal-protocol families are interchangeable: for every
    /// (tree, P, policy, fabric mode, fault schedule), cas-lock, lock-free
    /// and fence-free all produce the exact serial UTS node count and
    /// conserve every PFor thread — under a fault-free fabric and under
    /// random transient verb faults alike. Fence-free's bounded
    /// multiplicity must never leak into the observable result.
    #[test]
    fn protocols_agree_on_results(
        b0 in 2u32..5,
        gen_mx in 2u32..6,
        tree_seed in 0u64..300,
        workers in 2usize..7,
        policy in any_policy(),
        pipelined in proptest::bool::ANY,
        fault_permille in 0u64..80,
        fault_seed in 0u64..500,
    ) {
        let spec = UtsSpec::new(b0 as f64, gen_mx, Shape::Linear, tree_seed);
        let expected = serial_count(&spec).nodes;
        let mode = if pipelined { FabricMode::Pipelined } else { FabricMode::Blocking };
        let params = dcs::apps::pfor::PforParams { n: 64, k: 2, m: VTime::us(2) };
        for protocol in Protocol::ALL {
            let cfg = || {
                let mut c = RunConfig::new(workers, policy)
                    .with_profile(profiles::test_profile())
                    .with_seg_bytes(64 << 20)
                    .with_fabric(mode)
                    .with_protocol(protocol);
                if fault_permille > 0 {
                    c = c.with_fault_plan(FaultPlan::transient(
                        fault_permille as f64 / 1000.0,
                        fault_seed,
                    ));
                }
                c
            };
            let r = run(cfg(), dcs::apps::uts::program(spec.clone()));
            prop_assert_eq!(r.result.as_u64(), expected, "uts under {:?}", protocol);
            if let Some(wd) = &r.watchdog {
                prop_assert!(wd.is_clean(), "uts under {:?}: {}", protocol, wd);
            }
            let r = run(cfg(), dcs::apps::pfor::pfor_program(params));
            prop_assert!(r.outcome.is_complete(), "pfor under {:?}", protocol);
            prop_assert_eq!(r.stats.threads_spawned, r.stats.threads_died);
        }
    }

    /// Fail-stop worker loss is protocol-independent: random kill schedules
    /// (the root holder explicitly included) leave every recoverable policy
    /// × protocol × fabric mode combination with the exact serial node
    /// count — replayed lineage records dedup against fence-free's claim
    /// set the same way a doubly-taken entry does.
    #[test]
    fn protocols_agree_under_kill(
        raw in proptest::collection::vec((0usize..8, 1u64..120), 1..3),
        pipelined in proptest::bool::ANY,
        policy in prop_oneof![
            Just(Policy::ChildRtc),
            Just(Policy::ContGreedy),
            Just(Policy::ContStalling),
        ],
    ) {
        const WORKERS: usize = 6;
        let spec = dcs::apps::uts::presets::tiny();
        let truth = serial_count(&spec).nodes;
        let mode = if pipelined { FabricMode::Pipelined } else { FabricMode::Blocking };
        // Thin the raw (victim, at-µs) list to ≤ ⌊W/2⌋ distinct victims and
        // tune the registry so detection + replay fit the tiny makespan.
        let mut plan = FaultPlan::none();
        let mut victims: Vec<usize> = Vec::new();
        for &(v, at_us) in &raw {
            let v = v % WORKERS;
            if victims.len() >= WORKERS / 2 && !victims.contains(&v) {
                continue;
            }
            if !victims.contains(&v) {
                victims.push(v);
            }
            plan = plan.with_kill(v, VTime::us(at_us));
        }
        plan.hb_period = VTime::us(10);
        plan.lease = VTime::us(30);
        for protocol in Protocol::ALL {
            let mut cfg = RunConfig::new(WORKERS, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20)
                .with_fabric(mode)
                .with_protocol(protocol)
                .with_fault_plan(plan.clone())
                .with_watchdog(true);
            cfg.max_steps = 50_000_000;
            let r = run(cfg, dcs::apps::uts::program(spec.clone()));
            prop_assert!(
                r.outcome.is_complete(),
                "{:?}/{:?}/{:?}: {:?}", policy, protocol, mode, r.outcome
            );
            prop_assert_eq!(
                r.result.as_u64(), truth,
                "{:?}/{:?}/{:?}", policy, protocol, mode
            );
            if let Some(wd) = &r.watchdog {
                // Armed runs legitimately abandon resources mid-recovery;
                // anything beyond a leak is a bug.
                let hard: Vec<_> = wd
                    .violations
                    .iter()
                    .filter(|v| !matches!(v, Violation::Leak { .. }))
                    .collect();
                prop_assert!(hard.is_empty(), "{:?}/{:?}: {:?}", policy, protocol, hard);
            }
        }
    }
}
