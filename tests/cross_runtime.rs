//! Cross-crate integration: the same workloads through every runtime and
//! policy must agree on results, and the paper's headline qualitative
//! claims must hold on small instances.

use dcs::apps::lcs::{self, LcsParams};
use dcs::apps::pfor::{pfor_program, recpfor_program, PforParams};
use dcs::apps::uts;
use dcs::bot;
use dcs::prelude::*;

/// Every runtime (4 fork-join policies + 3 BoT styles) counts the same UTS
/// tree identically.
#[test]
fn uts_seven_runtimes_agree() {
    let spec = uts::presets::tiny();
    let expected = uts::serial_count(&spec).nodes;
    let profile = profiles::test_profile;

    for policy in Policy::ALL {
        let r = run(
            RunConfig::new(5, policy)
                .with_profile(profile())
                .with_seg_bytes(64 << 20),
            uts::program(spec.clone()),
        );
        assert_eq!(r.result.as_u64(), expected, "{policy:?}");
    }
    let os = bot::onesided::run_uts(&spec, 5, profile(), 7);
    assert_eq!(os.nodes, expected);
    for variant in [
        bot::twosided::Variant::Random,
        bot::twosided::Variant::Lifeline,
    ] {
        let r = bot::twosided::run_uts(&spec, 5, profile(), variant, 7);
        assert_eq!(r.nodes, expected, "{variant:?}");
    }
}

/// LCS agrees with the reference DP under all policies that support the
/// workload, across worker counts and under both machine profiles.
#[test]
fn lcs_policies_and_profiles_agree() {
    let params = LcsParams::random_alpha(64, 16, 3, 4);
    let expected = lcs::lcs_reference(&params.a, &params.b) as u64;
    for policy in [Policy::ContGreedy, Policy::ContStalling, Policy::ChildFull] {
        for profile in [profiles::test_profile(), profiles::itoa()] {
            let r = run(
                RunConfig::new(6, policy)
                    .with_profile(profile)
                    .with_seg_bytes(64 << 20),
                lcs::program(params.clone()),
            );
            assert_eq!(r.result.as_u64(), expected, "{policy:?}");
        }
    }
}

/// §V-B: continuation stealing beats child stealing on RecPFor (the
/// complicated-join benchmark); the gap is small on PFor.
#[test]
fn recpfor_prefers_continuation_stealing() {
    let params = PforParams {
        n: 1 << 7,
        k: 3,
        m: VTime::us(10),
    };
    let elapsed = |policy| {
        run(
            RunConfig::new(16, policy)
                .with_profile(profiles::itoa())
                .with_seg_bytes(64 << 20),
            recpfor_program(params),
        )
        .elapsed
    };
    let greedy = elapsed(Policy::ContGreedy);
    let full = elapsed(Policy::ChildFull);
    assert!(
        greedy < full,
        "greedy {} should beat child-full {} on RecPFor",
        greedy,
        full
    );
}

/// §V-A: local collection never loses to the lock-queue baseline on the
/// join-heavy benchmark.
#[test]
fn local_collection_beats_lock_queue() {
    let params = PforParams {
        n: 1 << 7,
        k: 3,
        m: VTime::us(10),
    };
    let elapsed = |strategy| {
        run(
            RunConfig::new(16, Policy::ContStalling)
                .with_profile(profiles::itoa())
                .with_free_strategy(strategy)
                .with_seg_bytes(64 << 20),
            recpfor_program(params),
        )
        .elapsed
    };
    let lq = elapsed(FreeStrategy::LockQueue);
    let lc = elapsed(FreeStrategy::LocalCollection);
    assert!(
        lc <= lq,
        "local collection {} should not lose to lock queue {}",
        lc,
        lq
    );
}

/// Table II shape: child stealing produces far more outstanding joins than
/// continuation stealing on RecPFor, and steals far smaller tasks.
#[test]
fn outstanding_join_and_task_size_shape() {
    let params = PforParams {
        n: 1 << 7,
        k: 3,
        m: VTime::us(10),
    };
    let stats = |policy| {
        run(
            RunConfig::new(16, policy)
                .with_profile(profiles::itoa())
                .with_seg_bytes(64 << 20),
            recpfor_program(params),
        )
        .stats
    };
    let greedy = stats(Policy::ContGreedy);
    let full = stats(Policy::ChildFull);
    assert!(
        full.outstanding_joins > greedy.outstanding_joins * 4,
        "child-full {} vs greedy {} outstanding joins",
        full.outstanding_joins,
        greedy.outstanding_joins
    );
    assert!(greedy.avg_stolen_bytes() > 4 * full.avg_stolen_bytes());
    // Greedy resumes ready joins promptly.
    assert!(greedy.avg_outstanding_time() < full.avg_outstanding_time());
}

/// The steal-latency overhead of continuation stealing stays modest
/// (paper: < 20%) despite moving whole stacks.
#[test]
fn steal_latency_overhead_is_modest() {
    let params = PforParams::paper(1 << 9);
    let lat = |policy| {
        let s = run(
            RunConfig::new(16, policy)
                .with_profile(profiles::itoa())
                .with_seg_bytes(64 << 20),
            pfor_program(params),
        )
        .stats;
        assert!(s.steals_ok > 0);
        s.avg_steal_latency()
    };
    let cont = lat(Policy::ContGreedy).as_ns() as f64;
    let child = lat(Policy::ChildFull).as_ns() as f64;
    let overhead = cont / child - 1.0;
    assert!(
        (-0.05..0.30).contains(&overhead),
        "cont-steal latency overhead {overhead:.2} out of band"
    );
}

/// PFor elapsed time respects the work law `T_P ≥ T1/P` on every policy
/// and machine profile.
#[test]
fn work_law_holds() {
    let params = PforParams::paper(1 << 8);
    for policy in Policy::ALL {
        for profile in [profiles::itoa(), profiles::wisteria()] {
            let workers = 8;
            let scale = profile.compute_scale;
            let r = run(
                RunConfig::new(workers, policy)
                    .with_profile(profile)
                    .with_seg_bytes(64 << 20),
                pfor_program(params),
            );
            let bound = params.pfor_t1(scale) / workers as u64;
            assert!(
                r.elapsed >= bound,
                "{policy:?}: T_P {} < T1/P {}",
                r.elapsed,
                bound
            );
        }
    }
}

/// Determinism across the whole stack: bit-identical reports for equal
/// seeds, different schedules for different seeds.
#[test]
fn end_to_end_determinism() {
    let spec = uts::presets::tiny();
    let mk = |seed| {
        run(
            RunConfig::new(4, Policy::ContGreedy)
                .with_profile(profiles::itoa())
                .with_seed(seed)
                .with_seg_bytes(64 << 20),
            uts::program(spec.clone()),
        )
    };
    let a = mk(1);
    let b = mk(1);
    let c = mk(2);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.stats.steals_ok, b.stats.steals_ok);
    assert_eq!(a.fabric.remote_total(), b.fabric.remote_total());
    assert_eq!(a.result, c.result, "result is schedule-independent");
    assert_ne!(a.steps, c.steps, "different seed, different schedule");
}
