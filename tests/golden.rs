//! Golden regression tests: exact deterministic outputs for fixed seeds.
//!
//! The simulator's promise is that a run is a pure function of its
//! configuration. These tests pin that function's value for a handful of
//! configurations, so any *unintentional* change to protocol costs, RNG
//! streams, or scheduling order fails loudly. When a change is intentional
//! (e.g. recalibrating a latency), regenerate the constants and say so in
//! the commit message — that is the point of the test.

use dcs::apps::{lcs, lcs::LcsParams, pfor, pfor::PforParams, uts};
use dcs::prelude::*;

fn uts_run(policy: Policy) -> RunReport {
    run(
        RunConfig::new(4, policy)
            .with_seed(7)
            .with_seg_bytes(64 << 20),
        uts::program(uts::presets::tiny()),
    )
}

#[test]
fn golden_uts_cont_greedy() {
    let r = uts_run(Policy::ContGreedy);
    assert_eq!(r.result.as_u64(), 3028);
    assert_eq!(r.elapsed, VTime::ns(667_253));
    assert_eq!(r.stats.steals_ok, 13);
    assert_eq!(r.stats.steals_failed, 80);
    assert_eq!(r.steps, 10_970);
}

#[test]
fn golden_uts_cont_stalling() {
    let r = uts_run(Policy::ContStalling);
    assert_eq!(r.elapsed, VTime::ns(679_137));
    assert_eq!(r.stats.steals_ok, 13);
    assert_eq!(r.steps, 10_978);
}

#[test]
fn golden_uts_child_full() {
    let r = uts_run(Policy::ChildFull);
    assert_eq!(r.elapsed, VTime::ns(4_327_916));
    assert_eq!(r.stats.steals_ok, 15);
    assert_eq!(r.stats.steals_failed, 1_306);
}

#[test]
fn golden_uts_child_rtc() {
    let r = uts_run(Policy::ChildRtc);
    assert_eq!(r.elapsed, VTime::ns(509_100));
    assert_eq!(r.stats.steals_ok, 16);
}

/// 16-worker UTS on the ITO-A latency profile — one golden per policy.
/// Wider than the 4-worker pins above, so steal traffic (and therefore the
/// victim-RNG stream and the engine's fast-path/heap interleaving) is
/// exercised much harder; these pin the exact event order at a scale where
/// a subtle ordering bug would actually show.
fn uts16_itoa(policy: Policy) -> RunReport {
    run(
        RunConfig::new(16, policy)
            .with_profile(profiles::itoa())
            .with_seed(7)
            .with_seg_bytes(64 << 20),
        uts::program(uts::presets::tiny()),
    )
}

#[test]
fn golden_uts16_itoa_cont_greedy() {
    let r = uts16_itoa(Policy::ContGreedy);
    assert_eq!(r.result.as_u64(), 3028);
    assert_eq!(r.elapsed, VTime::ns(601_308));
    assert_eq!(r.stats.steals_ok, 32);
    assert_eq!(r.stats.steals_failed, 532);
    assert_eq!(r.stats.outstanding_joins, 8);
    assert_eq!(r.steps, 11_931);
    assert_eq!(r.threads, 1674);
}

#[test]
fn golden_uts16_itoa_cont_stalling() {
    let r = uts16_itoa(Policy::ContStalling);
    assert_eq!(r.result.as_u64(), 3028);
    assert_eq!(r.elapsed, VTime::ns(609_913));
    assert_eq!(r.stats.steals_ok, 29);
    assert_eq!(r.stats.steals_failed, 570);
    assert_eq!(r.steps, 12_005);
}

#[test]
fn golden_uts16_itoa_child_full() {
    let r = uts16_itoa(Policy::ChildFull);
    assert_eq!(r.result.as_u64(), 3028);
    assert_eq!(r.elapsed, VTime::ns(2_339_226));
    assert_eq!(r.stats.steals_ok, 53);
    assert_eq!(r.stats.steals_failed, 2_922);
    assert_eq!(r.stats.outstanding_joins, 769);
    assert_eq!(r.steps, 19_308);
}

#[test]
fn golden_uts16_itoa_child_rtc() {
    let r = uts16_itoa(Policy::ChildRtc);
    assert_eq!(r.result.as_u64(), 3028);
    assert_eq!(r.elapsed, VTime::ns(451_170));
    assert_eq!(r.stats.steals_ok, 34);
    assert_eq!(r.steps, 14_130);
}

#[test]
fn golden_recpfor_greedy() {
    let r = run(
        RunConfig::new(8, Policy::ContGreedy)
            .with_seed(7)
            .with_seg_bytes(64 << 20),
        pfor::recpfor_program(PforParams {
            n: 64,
            k: 2,
            m: VTime::us(5),
        }),
    );
    assert_eq!(r.elapsed, VTime::ns(1_812_926));
    assert_eq!(r.stats.steals_ok, 85);
    assert_eq!(r.stats.outstanding_joins, 5);
}

#[test]
fn golden_lcs_futures() {
    let params = LcsParams::random_alpha(64, 16, 3, 4);
    let r = run(
        RunConfig::new(6, Policy::ContGreedy)
            .with_seed(7)
            .with_seg_bytes(64 << 20),
        lcs::program(params),
    );
    assert_eq!(r.result.as_u64(), 35);
    assert_eq!(r.elapsed, VTime::ns(140_040));
    assert_eq!(r.stats.steals_ok, 2);
}

/// 16-worker ITO-A UTS under the fence-free protocol — one golden per
/// policy. Beyond the event-order pinning of `uts16_itoa`, these pin the
/// *multiplicity* counters: the child-stealing policies genuinely take
/// entries twice at this scale (`ff_dups > 0`) and the dedup absorbs every
/// one of them — the node count stays exactly serial.
fn uts16_itoa_ff(policy: Policy) -> RunReport {
    run(
        RunConfig::new(16, policy)
            .with_profile(profiles::itoa())
            .with_seed(7)
            .with_seg_bytes(64 << 20)
            .with_protocol(Protocol::FenceFree),
        uts::program(uts::presets::tiny()),
    )
}

#[test]
fn golden_uts16_itoa_ff_cont_greedy() {
    let r = uts16_itoa_ff(Policy::ContGreedy);
    assert_eq!(r.result.as_u64(), 3028);
    assert_eq!(r.elapsed, VTime::ns(430_568));
    assert_eq!(r.stats.steals_ok, 26);
    assert_eq!(r.stats.steals_failed, 804);
    assert_eq!(r.stats.ff_dups, 0);
    assert_eq!(r.stats.ff_lost_races, 16);
    assert_eq!(r.steps, 11_648);
    assert_eq!(r.threads, 1674);
}

#[test]
fn golden_uts16_itoa_ff_cont_stalling() {
    let r = uts16_itoa_ff(Policy::ContStalling);
    assert_eq!(r.result.as_u64(), 3028);
    assert_eq!(r.elapsed, VTime::ns(416_203));
    assert_eq!(r.stats.steals_ok, 27);
    assert_eq!(r.stats.steals_failed, 764);
    assert_eq!(r.stats.ff_dups, 0);
    assert_eq!(r.stats.ff_lost_races, 16);
    assert_eq!(r.steps, 11_609);
}

#[test]
fn golden_uts16_itoa_ff_child_full() {
    let r = uts16_itoa_ff(Policy::ChildFull);
    assert_eq!(r.result.as_u64(), 3028);
    assert_eq!(r.elapsed, VTime::ns(1_296_194));
    assert_eq!(r.stats.steals_ok, 52);
    assert_eq!(r.stats.steals_failed, 3_125);
    assert_eq!(r.stats.ff_dups, 14);
    assert_eq!(r.stats.ff_lost_races, 11);
    assert_eq!(r.stats.outstanding_joins, 776);
}

#[test]
fn golden_uts16_itoa_ff_child_rtc() {
    let r = uts16_itoa_ff(Policy::ChildRtc);
    assert_eq!(r.result.as_u64(), 3028);
    assert_eq!(r.elapsed, VTime::ns(256_104));
    assert_eq!(r.stats.steals_ok, 31);
    assert_eq!(r.stats.steals_failed, 402);
    assert_eq!(r.stats.ff_dups, 17);
    assert_eq!(r.stats.ff_lost_races, 6);
    assert_eq!(r.steps, 13_654);
}
