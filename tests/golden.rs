//! Golden regression tests: exact deterministic outputs for fixed seeds.
//!
//! The simulator's promise is that a run is a pure function of its
//! configuration. These tests pin that function's value for a handful of
//! configurations, so any *unintentional* change to protocol costs, RNG
//! streams, or scheduling order fails loudly. When a change is intentional
//! (e.g. recalibrating a latency), regenerate the constants and say so in
//! the commit message — that is the point of the test.

use dcs::apps::{lcs, lcs::LcsParams, pfor, pfor::PforParams, uts};
use dcs::prelude::*;

fn uts_run(policy: Policy) -> RunReport {
    run(
        RunConfig::new(4, policy)
            .with_seed(7)
            .with_seg_bytes(64 << 20),
        uts::program(uts::presets::tiny()),
    )
}

#[test]
fn golden_uts_cont_greedy() {
    let r = uts_run(Policy::ContGreedy);
    assert_eq!(r.result.as_u64(), 3028);
    assert_eq!(r.elapsed, VTime::ns(667_253));
    assert_eq!(r.stats.steals_ok, 13);
    assert_eq!(r.stats.steals_failed, 80);
    assert_eq!(r.steps, 24_885);
}

#[test]
fn golden_uts_cont_stalling() {
    let r = uts_run(Policy::ContStalling);
    assert_eq!(r.elapsed, VTime::ns(679_137));
    assert_eq!(r.stats.steals_ok, 13);
    assert_eq!(r.steps, 25_976);
}

#[test]
fn golden_uts_child_full() {
    let r = uts_run(Policy::ChildFull);
    assert_eq!(r.elapsed, VTime::ns(4_327_916));
    assert_eq!(r.stats.steals_ok, 15);
    assert_eq!(r.stats.steals_failed, 1_306);
}

#[test]
fn golden_uts_child_rtc() {
    let r = uts_run(Policy::ChildRtc);
    assert_eq!(r.elapsed, VTime::ns(509_100));
    assert_eq!(r.stats.steals_ok, 16);
}

#[test]
fn golden_recpfor_greedy() {
    let r = run(
        RunConfig::new(8, Policy::ContGreedy)
            .with_seed(7)
            .with_seg_bytes(64 << 20),
        pfor::recpfor_program(PforParams {
            n: 64,
            k: 2,
            m: VTime::us(5),
        }),
    );
    assert_eq!(r.elapsed, VTime::ns(1_812_926));
    assert_eq!(r.stats.steals_ok, 85);
    assert_eq!(r.stats.outstanding_joins, 5);
}

#[test]
fn golden_lcs_futures() {
    let params = LcsParams::random_alpha(64, 16, 3, 4);
    let r = run(
        RunConfig::new(6, Policy::ContGreedy)
            .with_seed(7)
            .with_seg_bytes(64 << 20),
        lcs::program(params),
    );
    assert_eq!(r.result.as_u64(), 35);
    assert_eq!(r.elapsed, VTime::ns(140_040));
    assert_eq!(r.stats.steals_ok, 2);
}
