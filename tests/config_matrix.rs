//! Exhaustive configuration matrix: every combination of policy ×
//! free-strategy × address-scheme × victim-policy must produce correct
//! results on a workload that exercises spawns, joins, computes and steals.
//!
//! 4 × 2 × 2 × 3 = 48 configurations per machine profile. The point is not
//! depth (other tests cover each dimension deeply) but the *cross products*
//! — e.g. iso-address under the lock-queue free strategy with hierarchical
//! victim selection is a path no other test walks.

use dcs::apps::uts;
use dcs::prelude::*;
use dcs::sim::Topology;

#[test]
fn all_48_configurations_are_correct() {
    let spec = uts::UtsSpec::new(3.0, 6, uts::Shape::Linear, 5);
    let expected = uts::serial_count(&spec).nodes;
    let mut ran = 0;
    for policy in Policy::ALL {
        for free in [FreeStrategy::LocalCollection, FreeStrategy::LockQueue] {
            for scheme in [AddressScheme::Uni, AddressScheme::Iso] {
                for victim in [
                    VictimPolicy::Uniform,
                    VictimPolicy::Locality { p_local: 0.7 },
                    VictimPolicy::Hierarchical { local_tries: 1 },
                ] {
                    let cfg = RunConfig::new(6, policy)
                        .with_profile(profiles::test_profile())
                        .with_free_strategy(free)
                        .with_address_scheme(scheme)
                        .with_victim(victim)
                        .with_topology(Topology::Hierarchical {
                            node_size: 3,
                            intra_factor: 0.5,
                        })
                        .with_seg_bytes(64 << 20);
                    let r = run(cfg, uts::program(spec.clone()));
                    assert_eq!(
                        r.result.as_u64(),
                        expected,
                        "{policy:?}/{free:?}/{scheme:?}/{victim:?}"
                    );
                    ran += 1;
                }
            }
        }
    }
    assert_eq!(ran, 48);
}

/// The same matrix restricted to the future-heavy LCS (no RtC — buried
/// joins cannot express the wavefront safely at arbitrary schedules).
#[test]
fn lcs_matrix_over_memory_configurations() {
    use dcs::apps::lcs::{self, LcsParams};
    let params = LcsParams::random_alpha(32, 8, 9, 4);
    let expected = lcs::lcs_reference(&params.a, &params.b) as u64;
    for policy in [Policy::ContGreedy, Policy::ContStalling, Policy::ChildFull] {
        for free in [FreeStrategy::LocalCollection, FreeStrategy::LockQueue] {
            for scheme in [AddressScheme::Uni, AddressScheme::Iso] {
                let cfg = RunConfig::new(5, policy)
                    .with_profile(profiles::test_profile())
                    .with_free_strategy(free)
                    .with_address_scheme(scheme)
                    .with_seg_bytes(64 << 20);
                let r = run(cfg, lcs::program(params.clone()));
                assert_eq!(
                    r.result.as_u64(),
                    expected,
                    "{policy:?}/{free:?}/{scheme:?}"
                );
            }
        }
    }
}

/// Stragglers combined with topology-aware stealing still rebalance.
#[test]
fn straggler_with_locality_policy() {
    let spec = uts::UtsSpec::new(3.0, 7, uts::Shape::Linear, 5);
    let expected = uts::serial_count(&spec).nodes;
    let cfg = RunConfig::new(8, Policy::ContGreedy)
        .with_topology(Topology::Hierarchical {
            node_size: 4,
            intra_factor: 0.3,
        })
        .with_victim(VictimPolicy::Locality { p_local: 0.8 })
        .with_straggler(2, 6.0)
        .with_seg_bytes(64 << 20);
    let r = run(cfg, uts::program(spec));
    assert_eq!(r.result.as_u64(), expected);
    assert!(r.stats.steals_ok > 0);
}
