//! # dcs — Distributed Continuation Stealing
//!
//! A Rust reproduction of *"Distributed Continuation Stealing is More
//! Scalable than You Might Think"* (Shiina & Taura, IEEE CLUSTER 2022):
//! a distributed-memory work-stealing runtime with RDMA-style one-sided
//! join protocols, evaluated on a deterministic cluster simulator.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sim`] — the simulated RDMA cluster (virtual time, latency profiles,
//!   pinned segments, one-sided verbs, discrete-event engine),
//! * [`uniaddr`] — the uni-address stack address-space model,
//! * [`core`] — the runtime: continuation/child stealing × greedy/stalling
//!   joins, multi-consumer futures, remote-object memory management,
//! * [`apps`] — PFor, RecPFor, UTS and LCS benchmark programs,
//! * [`bot`] — bag-of-tasks baselines (SAWS/Charm++/X10-GLB styles),
//! * [`pgas`] — global-heap (PGAS) arrays with one-sided task access
//!   (the paper's §VII future work).
//!
//! ## Quick start
//!
//! ```
//! use dcs::prelude::*;
//! use dcs::apps::uts;
//!
//! let spec = uts::presets::tiny();
//! let cfg = RunConfig::new(8, Policy::ContGreedy);
//! let report = run(cfg, uts::program(spec.clone()));
//! assert_eq!(report.result.as_u64(), uts::serial_count(&spec).nodes);
//! ```
//!
//! See `examples/` for commented walk-throughs and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use dcs_apps as apps;
pub use dcs_bot as bot;
pub use dcs_core as core;
pub use dcs_pgas as pgas;
pub use dcs_sim as sim;
pub use dcs_uniaddr as uniaddr;

pub use dcs_core::prelude;
